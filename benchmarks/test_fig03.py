"""Fig 3: PID misprediction around h264 execution-time spikes."""

from repro.experiments import fig03_pid


def test_fig03(benchmark, prewarmed, save_result):
    result = benchmark.pedantic(fig03_pid.run, rounds=1, iterations=1)
    save_result("fig03", fig03_pid.to_text(result))
    # The PID prediction lags actual changes by one job: errors
    # correlate with the negated previous-frame delta.
    assert result.lag_correlation() > 0.2
