"""Table 3: benchmark/workload summary."""

from repro.experiments import table3


def test_table3(benchmark, save_result):
    rows = benchmark(table3.run)
    text = table3.to_text(rows)
    save_result("table3", text)
    assert len(rows) == 7
