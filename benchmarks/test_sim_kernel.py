"""Simulation-kernel benches: interp vs compiled vs stepjit.

Measures per-design simulation throughput (cycles/sec) under each
backend, asserts exactness unconditionally, and writes the machine-
readable perf record ``BENCH_sim.json`` at the repo root — per-design
cycles/sec per backend (fast-forward on and off), stepjit codegen
time, and cold/warm offline-flow wall time.

The >= 5x stepjit-over-interp acceptance gate only runs on hosts with
at least four CPUs; on tiny CI runners wall-clock ratios are too noisy
to assert against.
"""

import json
import os
import pathlib
import time

import pytest

from repro.accelerators import get_design
from repro.flow import FlowConfig, generate_predictor
from repro.parallel import ArtifactCache, set_cache
from repro.rtl import compile_stepper, make_simulation
from repro.workloads import workload_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sim.json"

#: Designs the kernel gate is measured on (largest + most distinct).
KERNEL_DESIGNS = ("h264", "djpeg", "aes", "sha")
BACKENDS = ("interp", "compiled", "stepjit")
SCALE = 0.05
JOBS_PER_DESIGN = 3

#: Hard speedup assertions need a quiet multi-core host.
ENOUGH_CPUS = (os.cpu_count() or 1) >= 4


#: Cycle cap for the fast-forward-off throughput probe.  Without the
#: jump the interpreter grinds through every stall cycle, so full jobs
#: (millions of cycles) would take minutes per design; a capped run
#: measures steady-state cycles/sec just as well.  Cross-backend
#: exactness with fast-forward off is gated separately (the fuzz and
#: equivalence suites), so completion is only asserted with it on.
FF_OFF_CYCLE_CAP = 120_000


def _measure_backend(module, jobs, backend, fast_forward):
    sim = make_simulation(module, backend=backend,
                          track_state_cycles=False,
                          fast_forward=fast_forward)
    max_cycles = 200_000_000 if fast_forward else FF_OFF_CYCLE_CAP
    # Warm once: stepjit codegen, wire memo tables, allocator noise.
    sim.load(*jobs[0])
    warm_cycles = sim.run(max_cycles=max_cycles).cycles
    start = time.perf_counter()
    cycles = 0
    for inputs, memories in jobs:
        sim.reset()
        sim.load(inputs=inputs, memories=memories)
        result = sim.run(max_cycles=max_cycles)
        if fast_forward:
            assert result.finished
        cycles += result.cycles
    wall_s = time.perf_counter() - start
    return {
        "cycles": cycles,
        "wall_s": wall_s,
        "cycles_per_sec": cycles / wall_s if wall_s > 0 else 0.0,
        "warm_job_cycles": warm_cycles,
    }


@pytest.fixture(scope="session")
def kernel_results():
    """Per-design, per-backend throughput (both fast-forward modes)."""
    results = {}
    for name in KERNEL_DESIGNS:
        design = get_design(name)
        module = design.build()
        jobs = [design.encode_job(item).as_pair()
                for item in workload_for(name, scale=SCALE)
                .test[:JOBS_PER_DESIGN]]
        per_backend = {}
        for backend in BACKENDS:
            per_backend[backend] = {
                "ff_on": _measure_backend(module, jobs, backend, True),
                "ff_off": _measure_backend(module, jobs, backend, False),
            }
        program = compile_stepper(module, track_state_cycles=False)
        results[name] = {
            "backends": per_backend,
            "stepjit_codegen_s": program.codegen_s,
            "n_jobs": len(jobs),
        }
    return results


@pytest.fixture(scope="session")
def flow_walls(tmp_path_factory):
    """Cold vs warm offline-flow wall time through the artifact cache."""
    cache_dir = tmp_path_factory.mktemp("kernel-cache")
    design = get_design("aes")
    items = workload_for("aes", scale=SCALE).train
    set_cache(ArtifactCache(cache_dir))
    try:
        t0 = time.perf_counter()
        generate_predictor(design, items, FlowConfig(gamma=1e-4))
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        generate_predictor(design, items, FlowConfig(gamma=1e-4))
        warm_s = time.perf_counter() - t0
    finally:
        set_cache(None)
    return {"design": "aes", "scale": SCALE,
            "cold_s": cold_s, "warm_s": warm_s}


def test_backends_agree_on_cycle_counts(kernel_results):
    """Exactness is asserted unconditionally, on every host.

    Full jobs compare with fast-forward on; the ff_off probes compare
    against each other (all backends capped at the same cycle count).
    """
    for name, entry in kernel_results.items():
        per_backend = entry["backends"]
        reference = per_backend["interp"]["ff_on"]["cycles"]
        capped_ref = per_backend["interp"]["ff_off"]["cycles"]
        for backend in BACKENDS:
            assert per_backend[backend]["ff_on"]["cycles"] == reference, (
                name, backend)
            assert (per_backend[backend]["ff_off"]["cycles"]
                    == capped_ref), (name, backend)


def test_stepjit_speedup_gate(kernel_results):
    """Acceptance: stepjit >= 5x interp (>= 2x compiled) per design."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs for stable timing")
    for name, entry in kernel_results.items():
        per_backend = entry["backends"]
        interp = per_backend["interp"]["ff_on"]["cycles_per_sec"]
        compiled = per_backend["compiled"]["ff_on"]["cycles_per_sec"]
        stepjit = per_backend["stepjit"]["ff_on"]["cycles_per_sec"]
        assert stepjit >= 5.0 * interp, (
            f"{name}: stepjit {stepjit / interp:.2f}x interp < 5x")
        assert stepjit >= 2.0 * compiled, (
            f"{name}: stepjit {stepjit / compiled:.2f}x compiled < 2x")


def test_stepjit_codegen_is_cheap(kernel_results):
    """Codegen amortizes in one job: well under a second per design."""
    for name, entry in kernel_results.items():
        assert entry["stepjit_codegen_s"] < 1.0, name


def test_write_bench_sim_json(kernel_results, flow_walls):
    """Persist the machine-readable kernel perf record."""
    record = {
        "schema": 1,
        "scale": SCALE,
        "jobs_per_design": JOBS_PER_DESIGN,
        "cpu_count": os.cpu_count(),
        "designs": kernel_results,
        "flow": flow_walls,
        "speedups": {
            name: {
                "stepjit_vs_interp": (
                    entry["backends"]["stepjit"]["ff_on"]["cycles_per_sec"]
                    / entry["backends"]["interp"]["ff_on"]["cycles_per_sec"]
                ),
                "stepjit_vs_compiled": (
                    entry["backends"]["stepjit"]["ff_on"]["cycles_per_sec"]
                    / entry["backends"]["compiled"]["ff_on"]
                    ["cycles_per_sec"]
                ),
            }
            for name, entry in kernel_results.items()
        },
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                          + "\n")
    loaded = json.loads(BENCH_PATH.read_text())
    assert set(loaded["designs"]) == set(KERNEL_DESIGNS)
    assert loaded["flow"]["cold_s"] > 0 and loaded["flow"]["warm_s"] > 0
