"""Simulation-kernel benches: interp vs compiled vs stepjit vs batch.

Measures per-design simulation throughput (cycles/sec) under each
scalar backend, the batch backend's lockstep throughput across batch
widths, asserts exactness unconditionally, and writes the machine-
readable perf record ``BENCH_sim.json`` at the repo root — per-design
cycles/sec per scalar backend (fast-forward on and off), stepjit
codegen time, batch width-sweep rows (jobs/sec and cycles/sec at
widths 1/32/256/1000), the dense-path and record-path batch gates,
cold/warm offline-flow wall time, and a ``host`` provenance block
(numpy version, BLAS thread caps, cpu count) so numbers are
comparable across machines.

The scalar sweep iterates every backend in ``rtl.BACKENDS`` except
``batch``, which one-job-at-a-time scalar probes would misrepresent:
its native shape is the wide batch, measured by the width sweep and
the two gates below.

Hard speedup gates (stepjit >= 5x interp; batch >= 5x stepjit on both
the dense ff-off path and the 1000-job record path) only run on hosts
with at least four CPUs; on tiny CI runners wall-clock ratios are too
noisy to assert against.
"""

import json
import os
import pathlib
import time

import numpy as np
import pytest

from repro.accelerators import get_design
from repro.analysis import discover_features, record_jobs
from repro.flow import FlowConfig, generate_predictor
from repro.parallel import ArtifactCache, set_cache
from repro.rtl import (
    BACKENDS,
    BatchSimulation,
    compile_stepper,
    make_simulation,
    synthesize,
)
from repro.workloads import workload_for

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_sim.json"

#: Designs the kernel gate is measured on (largest + most distinct).
KERNEL_DESIGNS = ("h264", "djpeg", "aes", "sha")
SCALAR_BACKENDS = tuple(b for b in BACKENDS if b != "batch")
SCALE = 0.05
JOBS_PER_DESIGN = 3

#: The batch benches run on the design the acceptance gate names.
BATCH_DESIGN = "cjpeg"
BATCH_WIDTHS = (1, 32, 256, 1000)
BATCH_JOBS = 1000

#: Hard speedup assertions need a quiet multi-core host.
ENOUGH_CPUS = (os.cpu_count() or 1) >= 4


#: Cycle cap for the fast-forward-off throughput probes.  Without the
#: jump the kernels grind through every stall cycle, so full jobs
#: (millions of cycles) would take minutes per design; a capped run
#: measures steady-state cycles/sec just as well.  Cross-backend
#: exactness with fast-forward off is gated separately (the fuzz and
#: equivalence suites), so completion is only asserted with it on.
FF_OFF_CYCLE_CAP = 120_000

#: Dense-path gate probe: every job runs exactly this many cycles
#: under both backends, so the cycles/sec ratio is the jobs/sec ratio.
DENSE_CYCLE_CAP = 3_000
DENSE_JOBS = 200


def _host_block():
    """Provenance for cross-machine comparison of the numbers."""
    return {
        "numpy": np.__version__,
        "omp_num_threads": os.environ.get("OMP_NUM_THREADS"),
        "openblas_num_threads": os.environ.get("OPENBLAS_NUM_THREADS"),
        "cpu_count": os.cpu_count(),
    }


def _measure_backend(module, jobs, backend, fast_forward):
    sim = make_simulation(module, backend=backend,
                          track_state_cycles=False,
                          fast_forward=fast_forward)
    max_cycles = 200_000_000 if fast_forward else FF_OFF_CYCLE_CAP
    # Warm once: stepjit codegen, wire memo tables, allocator noise.
    sim.load(*jobs[0])
    warm_cycles = sim.run(max_cycles=max_cycles).cycles
    start = time.perf_counter()
    cycles = 0
    for inputs, memories in jobs:
        sim.reset()
        sim.load(inputs=inputs, memories=memories)
        result = sim.run(max_cycles=max_cycles)
        if fast_forward:
            assert result.finished
        cycles += result.cycles
    wall_s = time.perf_counter() - start
    return {
        "cycles": cycles,
        "wall_s": wall_s,
        "cycles_per_sec": cycles / wall_s if wall_s > 0 else 0.0,
        "warm_job_cycles": warm_cycles,
    }


@pytest.fixture(scope="session")
def kernel_results():
    """Per-design, per-scalar-backend throughput (both ff modes)."""
    results = {}
    for name in KERNEL_DESIGNS:
        design = get_design(name)
        module = design.build()
        jobs = [design.encode_job(item).as_pair()
                for item in workload_for(name, scale=SCALE)
                .test[:JOBS_PER_DESIGN]]
        per_backend = {}
        for backend in SCALAR_BACKENDS:
            per_backend[backend] = {
                "ff_on": _measure_backend(module, jobs, backend, True),
                "ff_off": _measure_backend(module, jobs, backend, False),
            }
        program = compile_stepper(module, track_state_cycles=False)
        results[name] = {
            "backends": per_backend,
            "stepjit_codegen_s": program.codegen_s,
            "n_jobs": len(jobs),
        }
    return results


@pytest.fixture(scope="session")
def batch_parts():
    """The batch-bench design, module, and 1000-job tiled workload."""
    design = get_design(BATCH_DESIGN)
    module = design.build()
    base = [design.encode_job(item).as_pair()
            for item in workload_for(BATCH_DESIGN, scale=SCALE).train]
    jobs = (base * (BATCH_JOBS // len(base) + 1))[:BATCH_JOBS]
    return design, module, jobs


@pytest.fixture(scope="session")
def batch_width_sweep(batch_parts):
    """Full-job batch throughput per width, fast-forward on.

    Small widths use a bounded job sample (lockstep overhead per call
    dwarfs the per-row work there); jobs/sec normalizes them out.
    """
    _design, module, jobs = batch_parts
    sim = BatchSimulation(module, events=False)
    sweep = []
    for width in BATCH_WIDTHS:
        sample = jobs[:min(len(jobs), max(width * 10, 32))]
        chunks = [sample[i:i + width]
                  for i in range(0, len(sample), width)]
        sim.run_jobs(chunks[0])  # warm: codegen + allocator noise
        start = time.perf_counter()
        cycles = 0
        for chunk in chunks:
            result = sim.run_jobs(chunk)
            assert result.finished.all()
            cycles += int(result.cycles.sum())
        wall_s = time.perf_counter() - start
        sweep.append({
            "width": width,
            "n_jobs": len(sample),
            "wall_s": wall_s,
            "jobs_per_sec": len(sample) / wall_s if wall_s > 0 else 0.0,
            "cycles_per_sec": cycles / wall_s if wall_s > 0 else 0.0,
        })
    return sweep


@pytest.fixture(scope="session")
def batch_dense_path(batch_parts):
    """Capped dense (ff off) throughput: stepjit vs width-1000 batch.

    Both backends run the same jobs for the same ``DENSE_CYCLE_CAP``
    cycles each, so the throughput ratio is the jobs/sec ratio the
    dense-path gate asserts.  Best of three to shed scheduler noise.
    """
    _design, module, jobs = batch_parts
    sim = make_simulation(module, backend="stepjit", fast_forward=False)
    sim.load(*jobs[0])
    sim.run(max_cycles=DENSE_CYCLE_CAP)
    stepjit_wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        cycles = 0
        for inputs, memories in jobs[:DENSE_JOBS]:
            sim.reset()
            sim.load(inputs=inputs, memories=memories)
            cycles += sim.run(max_cycles=DENSE_CYCLE_CAP).cycles
        stepjit_wall = min(stepjit_wall, time.perf_counter() - start)
    stepjit_cps = cycles / stepjit_wall

    batch = BatchSimulation(module, fast_forward=False, events=False)
    batch.run_jobs(jobs, max_cycles=200)  # warm
    batch_wall = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        result = batch.run_jobs(jobs, max_cycles=DENSE_CYCLE_CAP)
        batch_wall = min(batch_wall, time.perf_counter() - start)
    batch_cps = int(result.cycles.sum()) / batch_wall
    return {
        "cycle_cap": DENSE_CYCLE_CAP,
        "stepjit": {"n_jobs": DENSE_JOBS, "wall_s": stepjit_wall,
                    "cycles_per_sec": stepjit_cps},
        "batch": {"n_jobs": len(jobs), "width": len(jobs),
                  "wall_s": batch_wall, "cycles_per_sec": batch_cps},
        "batch_vs_stepjit": batch_cps / stepjit_cps,
    }


@pytest.fixture(scope="session")
def batch_record_path(batch_parts):
    """The acceptance benchmark: a 1000-job cjpeg training matrix
    recorded via ``record_jobs`` under stepjit vs batch, with the
    resulting matrices compared bit-for-bit.  Best of three."""
    _design, module, jobs = batch_parts
    features = discover_features(module, synthesize(module))

    def measure(backend):
        record_jobs(module, features, jobs[:50], backend=backend,
                    workers=1)  # warm
        best = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            matrix = record_jobs(module, features, jobs,
                                 backend=backend, workers=1)
            best = min(best, time.perf_counter() - start)
        return matrix, best

    stepjit_matrix, stepjit_wall = measure("stepjit")
    batch_matrix, batch_wall = measure("batch")
    return {
        "design": BATCH_DESIGN,
        "n_jobs": len(jobs),
        "bit_identical": (
            np.array_equal(stepjit_matrix.x, batch_matrix.x)
            and np.array_equal(stepjit_matrix.cycles,
                               batch_matrix.cycles)),
        "stepjit": {"wall_s": stepjit_wall,
                    "jobs_per_sec": len(jobs) / stepjit_wall},
        "batch": {"wall_s": batch_wall,
                  "jobs_per_sec": len(jobs) / batch_wall},
        "batch_vs_stepjit": stepjit_wall / batch_wall,
    }


@pytest.fixture(scope="session")
def flow_walls(tmp_path_factory):
    """Cold vs warm offline-flow wall time through the artifact cache."""
    cache_dir = tmp_path_factory.mktemp("kernel-cache")
    design = get_design("aes")
    items = workload_for("aes", scale=SCALE).train
    set_cache(ArtifactCache(cache_dir))
    try:
        t0 = time.perf_counter()
        generate_predictor(design, items, FlowConfig(gamma=1e-4))
        cold_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        generate_predictor(design, items, FlowConfig(gamma=1e-4))
        warm_s = time.perf_counter() - t0
    finally:
        set_cache(None)
    return {"design": "aes", "scale": SCALE,
            "cold_s": cold_s, "warm_s": warm_s}


def test_backends_agree_on_cycle_counts(kernel_results):
    """Exactness is asserted unconditionally, on every host.

    Full jobs compare with fast-forward on; the ff_off probes compare
    against each other (all backends capped at the same cycle count).
    """
    for name, entry in kernel_results.items():
        per_backend = entry["backends"]
        reference = per_backend["interp"]["ff_on"]["cycles"]
        capped_ref = per_backend["interp"]["ff_off"]["cycles"]
        for backend in SCALAR_BACKENDS:
            assert per_backend[backend]["ff_on"]["cycles"] == reference, (
                name, backend)
            assert (per_backend[backend]["ff_off"]["cycles"]
                    == capped_ref), (name, backend)


def test_batch_record_matrix_is_bit_identical(batch_record_path):
    """The batch training matrix equals stepjit's, bit for bit —
    asserted unconditionally, on every host."""
    assert batch_record_path["bit_identical"]


def test_stepjit_speedup_gate(kernel_results):
    """Acceptance: stepjit >= 5x interp (>= 2x compiled) per design."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs for stable timing")
    for name, entry in kernel_results.items():
        per_backend = entry["backends"]
        interp = per_backend["interp"]["ff_on"]["cycles_per_sec"]
        compiled = per_backend["compiled"]["ff_on"]["cycles_per_sec"]
        stepjit = per_backend["stepjit"]["ff_on"]["cycles_per_sec"]
        assert stepjit >= 5.0 * interp, (
            f"{name}: stepjit {stepjit / interp:.2f}x interp < 5x")
        assert stepjit >= 2.0 * compiled, (
            f"{name}: stepjit {stepjit / compiled:.2f}x compiled < 2x")


def test_batch_dense_speedup_gate(batch_dense_path):
    """Acceptance: batch >= 5x stepjit jobs/sec on the ff-off dense
    path at width 1000 (same capped cycles per job on both sides)."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs for stable timing")
    ratio = batch_dense_path["batch_vs_stepjit"]
    assert ratio >= 5.0, f"batch dense path {ratio:.2f}x stepjit < 5x"


def test_batch_record_speedup_gate(batch_record_path):
    """Acceptance: recording the 1000-job cjpeg training matrix via
    batch is >= 5x faster (jobs/sec) than stepjit."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs for stable timing")
    ratio = batch_record_path["batch_vs_stepjit"]
    assert ratio >= 5.0, f"batch record path {ratio:.2f}x stepjit < 5x"


def test_batch_width_sweep_monotone_amortization(batch_width_sweep):
    """Wider batches amortize dispatch: width 1000 must beat width 1
    on jobs/sec by a wide margin (the lockstep lever itself)."""
    by_width = {row["width"]: row for row in batch_width_sweep}
    assert set(by_width) == set(BATCH_WIDTHS)
    if not ENOUGH_CPUS:
        pytest.skip("throughput comparison needs >= 4 CPUs")
    assert (by_width[1000]["jobs_per_sec"]
            > 5.0 * by_width[1]["jobs_per_sec"])


def test_stepjit_codegen_is_cheap(kernel_results):
    """Codegen amortizes in one job: well under a second per design."""
    for name, entry in kernel_results.items():
        assert entry["stepjit_codegen_s"] < 1.0, name


def test_write_bench_sim_json(kernel_results, flow_walls,
                              batch_width_sweep, batch_dense_path,
                              batch_record_path):
    """Persist the machine-readable kernel perf record."""
    record = {
        "schema": 2,
        "scale": SCALE,
        "jobs_per_design": JOBS_PER_DESIGN,
        "host": _host_block(),
        "designs": kernel_results,
        "flow": flow_walls,
        "batch": {
            "design": BATCH_DESIGN,
            "width_sweep": batch_width_sweep,
            "dense_path": batch_dense_path,
            "record_path": batch_record_path,
        },
        "speedups": {
            name: {
                "stepjit_vs_interp": (
                    entry["backends"]["stepjit"]["ff_on"]["cycles_per_sec"]
                    / entry["backends"]["interp"]["ff_on"]["cycles_per_sec"]
                ),
                "stepjit_vs_compiled": (
                    entry["backends"]["stepjit"]["ff_on"]["cycles_per_sec"]
                    / entry["backends"]["compiled"]["ff_on"]
                    ["cycles_per_sec"]
                ),
            }
            for name, entry in kernel_results.items()
        },
    }
    record["speedups"]["batch_vs_stepjit_record"] = (
        batch_record_path["batch_vs_stepjit"])
    record["speedups"]["batch_vs_stepjit_dense"] = (
        batch_dense_path["batch_vs_stepjit"])
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                          + "\n")
    loaded = json.loads(BENCH_PATH.read_text())
    assert set(loaded["designs"]) == set(KERNEL_DESIGNS)
    assert loaded["flow"]["cold_s"] > 0 and loaded["flow"]["warm_s"] > 0
    assert loaded["host"]["numpy"] == np.__version__
