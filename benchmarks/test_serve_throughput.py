"""Serving-runtime throughput bench: jobs/s and decision latency.

Runs the online serving path end to end — realtime asyncio pacing,
per-job slice prediction on the live simulator, DVFS level selection,
stream accounting — against an open-loop Poisson load, and writes the
machine-readable perf record ``BENCH_serve.json`` at the repo root:
sustained jobs/s, p50/p99 wall-clock decision latency, and the
fallback/shed rates.

The rate-sustain acceptance gate (offered rate held within a few
percent) only fires on hosts with at least four CPUs; wall-clock
pacing on tiny CI runners is too noisy to assert against.  The
accounting and latency-sanity assertions run everywhere.
"""

import json
import os
import pathlib
import time

import pytest

from repro.check import check_fleet
from repro.experiments import bundle_for, make_controller, tech_context
from repro.serve import (
    AcceleratorStream,
    FleetConfig,
    LoadReport,
    RecordPredictor,
    ServeConfig,
    ShardSpec,
    SlicePredictor,
    build_mixed_stream,
    build_stream_jobs,
    poisson_arrivals,
    serve_fleet,
    serve_stream,
    virtual_outcomes,
)

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BENCH_PATH = REPO_ROOT / "BENCH_serve.json"

BENCHMARK = "cjpeg"
SCALE = 0.05
SCHEME = "prediction"
RATE = 200.0        # offered jobs/s (the acceptance criterion's rate)
DURATION = 3.0      # seconds of realtime serving
SEED = 11

ENOUGH_CPUS = (os.cpu_count() or 1) >= 4


@pytest.fixture(scope="session")
def serve_bench():
    """One realtime open-loop run at the acceptance-criterion load."""
    bundle = bundle_for(BENCHMARK, SCALE)
    ctx = tech_context(bundle, tech="asic")
    stream = AcceleratorStream(
        BENCHMARK, make_controller(ctx, SCHEME),
        ctx.energy_model, ctx.slice_energy_model,
        predictor=SlicePredictor(bundle.package),
        config=ServeConfig(deadline=ctx.config.deadline,
                           t_switch=ctx.config.t_switch))
    arrivals = poisson_arrivals(RATE, duration=DURATION, seed=SEED)
    jobs = build_stream_jobs(bundle, arrivals, with_inputs=True)
    result = serve_stream(stream, jobs, realtime=True)
    report = LoadReport.from_result(result, mode="open",
                                    offered_rate=RATE)
    return stream, result, report


def test_serve_accounting_is_clean(serve_bench):
    """Strict stream invariants hold under realtime load."""
    from tests.serve.conftest import violations_of

    stream, result, _ = serve_bench
    assert violations_of(stream, result) == []
    assert (result.n_completed + result.n_fallback + result.n_shed
            == result.n_offered)
    assert result.n_offered > 0


def test_decision_latency_is_sane(serve_bench):
    """Per-job decisions stay far below the 16.7 ms frame deadline."""
    _, result, report = serve_bench
    assert report.p50_decision_ms > 0.0
    assert report.p50_decision_ms <= report.p99_decision_ms
    assert report.p99_decision_ms < 50.0  # generous even for tiny CI


def test_sustains_offered_rate(serve_bench):
    """Acceptance: the offered 200 jobs/s is sustained in realtime."""
    if not ENOUGH_CPUS:
        pytest.skip("rate gate needs >= 4 CPUs for stable pacing")
    _, result, report = serve_bench
    # No shedding and a wall time within ~5% of the stream span means
    # the server kept pace with every arrival.
    assert report.n_shed == 0
    assert report.wall_s <= DURATION * 1.05
    assert report.n_completed + report.n_fallback == report.n_offered


def test_write_bench_serve_json(serve_bench):
    """Persist the machine-readable serving perf record — always."""
    _, result, report = serve_bench
    record = {
        "schema": 1,
        "benchmark": BENCHMARK,
        "scale": SCALE,
        "scheme": result.scheme,
        "offered_rate": RATE,
        "duration_s": DURATION,
        "seed": SEED,
        "cpu_count": os.cpu_count(),
        "n_offered": report.n_offered,
        "n_completed": report.n_completed,
        "n_fallback": report.n_fallback,
        "n_shed": report.n_shed,
        "jobs_per_s": report.wall_rate,
        "achieved_rate_virtual": report.achieved_rate,
        "p50_decision_ms": report.p50_decision_ms,
        "p99_decision_ms": report.p99_decision_ms,
        "max_decision_ms": report.max_decision_ms,
        "fallback_rate": report.fallback_rate,
        "shed_rate": report.shed_rate,
        "miss_rate": report.miss_rate,
        "wall_s": report.wall_s,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                          + "\n")
    loaded = json.loads(BENCH_PATH.read_text())
    assert loaded["n_offered"] > 0
    assert loaded["jobs_per_s"] > 0.0
    assert loaded["p99_decision_ms"] >= loaded["p50_decision_ms"] > 0.0
    assert 0.0 <= loaded["fallback_rate"] <= 1.0


# -- fleet throughput: 4 shards vs the single-stream reference -------

FLEET_SHARDS = 4
FLEET_JOBS = 10_000
FLEET_RATE = 2_000.0   # virtual jobs/s: saturating, so compute-bound


@pytest.fixture(scope="session")
def fleet_bench():
    """The same offered stream three ways: one stream serially, the
    4-shard fleet serially, and the 4-shard fleet across 4 workers —
    all on the virtual clock, so wall time measures the serving
    machinery itself."""
    bundle = bundle_for(BENCHMARK, SCALE)
    ctx = tech_context(bundle, tech="asic")
    arrivals = poisson_arrivals(FLEET_RATE, n_jobs=FLEET_JOBS,
                                seed=SEED)
    serve_config = ServeConfig(deadline=ctx.config.deadline,
                               t_switch=ctx.config.t_switch)

    def make_specs():
        # Fresh controllers per run: reactive state must not leak.
        return [ShardSpec(
            name=f"{BENCHMARK}#{i}", benchmark=BENCHMARK,
            controller=make_controller(ctx, SCHEME),
            energy_model=ctx.energy_model,
            slice_energy_model=ctx.slice_energy_model,
            predictor=RecordPredictor(), config=serve_config)
            for i in range(FLEET_SHARDS)]

    stream = AcceleratorStream(
        BENCHMARK, make_controller(ctx, SCHEME),
        ctx.energy_model, ctx.slice_energy_model,
        predictor=RecordPredictor(), config=serve_config)
    t0 = time.perf_counter()
    single = serve_stream(stream, build_stream_jobs(bundle, arrivals))
    single_wall = time.perf_counter() - t0

    jobs = build_mixed_stream({BENCHMARK: bundle}, arrivals, seed=SEED)
    config = FleetConfig(policy="round_robin", strict=False)
    runs = {}
    for workers in (1, FLEET_SHARDS):
        t0 = time.perf_counter()
        runs[workers] = serve_fleet(make_specs(), jobs, config,
                                    workers=workers)
        runs[workers].wall_s = time.perf_counter() - t0
    return single, single_wall, runs


def test_fleet_accounting_is_clean(fleet_bench):
    single, _, runs = fleet_bench
    assert single.n_offered == FLEET_JOBS
    for result in runs.values():
        assert result.n_offered == FLEET_JOBS
        assert (result.n_completed + result.n_fallback + result.n_shed
                == FLEET_JOBS)
        assert check_fleet(result) == []


def test_fleet_outcomes_bit_identical_across_workers(fleet_bench):
    """Acceptance: under round-robin, a 4-worker run reproduces the
    serial reference per-job — same routing, same sheds, and
    bit-identical virtual outcomes on every shard."""
    _, _, runs = fleet_bench
    serial, parallel = runs[1], runs[FLEET_SHARDS]
    assert serial.assignments == parallel.assignments
    assert serial.sheds == parallel.sheds
    for a, b in zip(serial.shards, parallel.shards):
        assert virtual_outcomes(a) == virtual_outcomes(b)


def test_fleet_beats_single_stream_2x(fleet_bench):
    """Acceptance: 4 shards sustain at least twice the single-stream
    jobs/s (gated to hosts with real parallelism)."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs")
    _, single_wall, runs = fleet_bench
    single_rate = FLEET_JOBS / single_wall
    fleet_rate = FLEET_JOBS / runs[FLEET_SHARDS].wall_s
    assert fleet_rate >= 2.0 * single_rate


def test_write_bench_fleet_json(fleet_bench):
    """Fold the fleet figures into BENCH_serve.json (read-modify-
    write: the single-stream record may already be there)."""
    _, single_wall, runs = fleet_bench
    record = (json.loads(BENCH_PATH.read_text())
              if BENCH_PATH.exists() else {"schema": 1})
    parallel = runs[FLEET_SHARDS]
    record["fleet"] = {
        "shards": FLEET_SHARDS,
        "policy": parallel.policy,
        "n_jobs": FLEET_JOBS,
        "offered_rate_virtual": FLEET_RATE,
        "cpu_count": os.cpu_count(),
        "single_stream_jobs_per_s": FLEET_JOBS / single_wall,
        "fleet_serial_jobs_per_s": FLEET_JOBS / runs[1].wall_s,
        "fleet_parallel_jobs_per_s": FLEET_JOBS / parallel.wall_s,
        "n_completed": parallel.n_completed,
        "n_fallback": parallel.n_fallback,
        "n_shed": parallel.n_shed,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                          + "\n")
    loaded = json.loads(BENCH_PATH.read_text())["fleet"]
    assert loaded["fleet_parallel_jobs_per_s"] > 0.0
    assert loaded["single_stream_jobs_per_s"] > 0.0
    assert (loaded["n_completed"] + loaded["n_fallback"]
            + loaded["n_shed"] == FLEET_JOBS)


# -- decision plane: vectorized epoch engine vs the scalar engine ----

DP_JOBS = 10_000
DP_SPEEDUP_GATE = 4.0


@pytest.fixture(scope="session")
def decision_plane_bench():
    """The same virtual stream through both decision engines.

    A uniform, sustainable schedule (inter-arrival comfortably above
    the deadline) makes every decision provably independent of its
    predecessor's outcome, so the epoch engine can coalesce the whole
    stream — the bench then measures the decision plane itself, not
    queueing."""
    import numpy as np

    bundle = bundle_for(BENCHMARK, SCALE)
    ctx = tech_context(bundle, tech="asic")
    arrivals = np.arange(DP_JOBS) * (2.5 * ctx.config.deadline)
    jobs = build_stream_jobs(bundle, arrivals)

    def run(engine):
        stream = AcceleratorStream(
            BENCHMARK, make_controller(ctx, SCHEME),
            ctx.energy_model, ctx.slice_energy_model,
            predictor=RecordPredictor(),
            config=ServeConfig(deadline=ctx.config.deadline,
                               t_switch=ctx.config.t_switch,
                               engine=engine))
        t0 = time.perf_counter()
        result = serve_stream(stream, jobs)
        return stream, result, time.perf_counter() - t0

    runs, walls = {}, {}
    for engine in ("scalar", "vector"):
        run(engine)  # warm caches and code paths
        timed = [run(engine) for _ in range(3)]
        runs[engine] = timed[0][:2]
        walls[engine] = min(wall for _, _, wall in timed)
    return runs, walls


def test_decision_plane_bit_identical(decision_plane_bench):
    """The differential gate, always on: both engines must produce
    the same canonical outcomes, and the vector run must actually
    have coalesced epochs (otherwise it measured nothing)."""
    runs, _ = decision_plane_bench
    scalar_stream, scalar_result = runs["scalar"]
    vector_stream, vector_result = runs["vector"]
    assert scalar_stream.epoch_log == []
    assert vector_stream.epoch_log
    assert (virtual_outcomes(scalar_result)
            == virtual_outcomes(vector_result))
    covered = sum(n for _, n in vector_stream.epoch_log)
    assert covered == DP_JOBS


def test_decision_plane_speedup_4x(decision_plane_bench):
    """Acceptance: >= 4x single-stream decision throughput (gated to
    hosts with enough CPUs for stable wall-clock timing)."""
    if not ENOUGH_CPUS:
        pytest.skip("speedup gate needs >= 4 CPUs")
    _, walls = decision_plane_bench
    assert walls["scalar"] / walls["vector"] >= DP_SPEEDUP_GATE


def test_write_bench_decision_plane_json(decision_plane_bench):
    """Fold the decision-plane figures into BENCH_serve.json."""
    runs, walls = decision_plane_bench
    vector_stream, _ = runs["vector"]
    record = (json.loads(BENCH_PATH.read_text())
              if BENCH_PATH.exists() else {"schema": 1})
    record["decision_plane"] = {
        "n_jobs": DP_JOBS,
        "cpu_count": os.cpu_count(),
        "scalar_jobs_per_s": DP_JOBS / walls["scalar"],
        "vector_jobs_per_s": DP_JOBS / walls["vector"],
        "speedup": walls["scalar"] / walls["vector"],
        "epochs": len(vector_stream.epoch_log),
        "bit_identical": True,
    }
    BENCH_PATH.write_text(json.dumps(record, indent=2, sort_keys=True)
                          + "\n")
    loaded = json.loads(BENCH_PATH.read_text())["decision_plane"]
    assert loaded["scalar_jobs_per_s"] > 0.0
    assert loaded["vector_jobs_per_s"] > 0.0
    assert loaded["bit_identical"] is True
