"""Throughput benches for the framework itself (not a paper figure):
how fast the offline flow and the simulator substrate run."""

from repro.accelerators import get_design
from repro.flow import FlowConfig, generate_predictor
from repro.parallel import ArtifactCache, set_cache
from repro.rtl import Simulation, synthesize
from repro.workloads import workload_for


def test_offline_flow_cjpeg(benchmark):
    """The complete Fig 6 offline flow on the JPEG encoder."""
    design = get_design("cjpeg")
    workload = workload_for("cjpeg", scale=0.15)

    def flow():
        return generate_predictor(design, workload.train,
                                  FlowConfig(gamma=1e-4))

    package = benchmark.pedantic(flow, rounds=1, iterations=1)
    assert package.n_selected_features >= 1


def test_offline_flow_cjpeg_warm_cache(benchmark, tmp_path):
    """The same flow rerun against a warm artifact cache.

    One cold pass seeds the cache; the benchmark then measures warm
    reruns, which skip the record stage (the flow's dominant cost) and
    should run an order of magnitude faster than ``test_offline_flow_cjpeg``.
    """
    design = get_design("cjpeg")
    workload = workload_for("cjpeg", scale=0.15)
    cache = set_cache(ArtifactCache(tmp_path))
    try:
        cold = generate_predictor(design, workload.train,
                                  FlowConfig(gamma=1e-4))

        def warm_flow():
            return generate_predictor(design, workload.train,
                                      FlowConfig(gamma=1e-4))

        package = benchmark.pedantic(warm_flow, rounds=3, iterations=1)
        # >= 1, not == rounds: --benchmark-disable collapses to one call.
        assert cache.stats.by_kind.get("feature_matrix.hit", 0) >= 1
        assert package.n_selected_features == cold.n_selected_features
    finally:
        set_cache(None)


def test_simulator_throughput_h264(benchmark):
    """Cycle-accurate simulation rate on the largest design."""
    design = get_design("h264")
    module = design.build()
    workload = workload_for("h264", scale=0.1)
    job = design.encode_job(workload.test[0])
    sim = Simulation(module, track_state_cycles=False)

    def run_one_frame():
        sim.reset()
        sim.load(*job.as_pair())
        return sim.run()

    result = benchmark(run_one_frame)
    assert result.finished


def test_synthesis_throughput(benchmark):
    """Behavioural-to-structural lowering of all seven designs."""
    designs = [get_design(n) for n in
               ("h264", "cjpeg", "djpeg", "md", "stencil", "aes", "sha")]
    modules = [d.build() for d in designs]

    def synth_all():
        return [synthesize(m) for m in modules]

    netlists = benchmark(synth_all)
    assert len(netlists) == 7
