"""Sec 3.7: the h264 case study (feature reduction, slice costs)."""

from repro.experiments import case_study


def test_case_study(benchmark, prewarmed, save_result):
    result = benchmark.pedantic(case_study.run, rounds=1, iterations=1)
    save_result("case_study", case_study.to_text(result))
    # Lasso reduces the candidate pool to a small working set
    # (paper: 257 -> 7 on the full RTL's candidate pool).
    assert result.n_selected_features <= result.n_candidate_features / 2
    # Worst-case error around the paper's ~3%.
    assert result.worst_case_error_pct < 4.0
    # Slice area a few percent (paper: 5.7%), energy small (2.8%),
    # execution 5-15% of the decoder's time (ours is a touch faster).
    assert result.slice_area_fraction < 0.10
    assert result.slice_energy_fraction < 0.05
    assert 0.005 < result.slice_time_fraction_max < 0.20
