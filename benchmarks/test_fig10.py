"""Fig 10: prediction-error box statistics per benchmark."""

from repro.experiments import fig10_errors


def test_fig10(benchmark, prewarmed, save_result):
    result = benchmark.pedantic(fig10_errors.run, rounds=1, iterations=1)
    save_result("fig10", fig10_errors.to_text(result))
    for name, report in result.reports.items():
        # "For most benchmarks, the prediction error is negligible."
        limit = 12.0 if name == "djpeg" else 3.0
        assert report.mean_abs_pct < limit, name
        # Conservative: under-predictions stay bounded.
        assert report.max_under_pct < 15.0, name
    # "The JPEG decoder showed higher prediction error."
    others = [r.mean_abs_pct for n, r in result.reports.items()
              if n != "djpeg"]
    assert result.reports["djpeg"].mean_abs_pct > max(others)
