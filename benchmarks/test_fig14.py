"""Fig 14: the boost level eliminates residual misses."""

from repro.experiments import fig14_boost


def test_fig14(benchmark, prewarmed, save_result):
    summaries = benchmark.pedantic(fig14_boost.run, rounds=1,
                                   iterations=1)
    save_result("fig14", fig14_boost.to_text(summaries))
    head = fig14_boost.headline(summaries)
    # Paper: misses go to zero for +0.24% energy.
    assert head["boost_miss_pct"] == 0.0
    assert head["boost_energy_increase_pct"] < 1.5
