"""Ablation benches: the design knobs DESIGN.md calls out."""

from repro.experiments import ablations


def test_ablation_alpha(benchmark, prewarmed, save_result):
    points = benchmark.pedantic(ablations.alpha_sweep, rounds=1,
                                iterations=1)
    lines = ["alpha  under%  miss%  energy%"]
    for p in points:
        lines.append(f"{p.alpha:5.0f} {p.under_rate_pct:7.1f} "
                     f"{p.miss_rate_pct:6.2f} "
                     f"{p.normalized_energy_pct:8.1f}")
    save_result("ablation_alpha", "\n".join(lines))
    # Larger alpha -> fewer under-predictions (the objective's purpose).
    assert points[0].under_rate_pct >= points[-1].under_rate_pct
    # Under-prediction rate drops materially from symmetric to alpha=100.
    assert points[-1].under_rate_pct < points[0].under_rate_pct + 1e-9


def test_ablation_gamma(benchmark, prewarmed, save_result):
    points = benchmark.pedantic(ablations.gamma_sweep, rounds=1,
                                iterations=1)
    lines = ["gamma  n_feat  err%  slice_area%"]
    for p in points:
        lines.append(f"{p.gamma:7.0e} {p.n_features:6d} "
                     f"{p.mean_abs_error_pct:6.2f} "
                     f"{p.slice_area_fraction * 100:8.2f}")
    save_result("ablation_gamma", "\n".join(lines))
    # The strongest penalty keeps fewer features than the weakest and
    # costs accuracy.
    assert points[-1].n_features <= points[0].n_features
    assert points[-1].mean_abs_error_pct >= points[0].mean_abs_error_pct


def test_ablation_margin(benchmark, prewarmed, save_result):
    points = benchmark.pedantic(ablations.margin_sweep, rounds=1,
                                iterations=1)
    lines = ["margin%  miss%  energy%"]
    for p in points:
        lines.append(f"{p.margin_pct:7.1f} {p.miss_rate_pct:6.2f} "
                     f"{p.normalized_energy_pct:8.1f}")
    save_result("ablation_margin", "\n".join(lines))
    # More margin -> monotone energy increase, never more misses.
    energies = [p.normalized_energy_pct for p in points]
    assert all(a <= b + 1e-9 for a, b in zip(energies, energies[1:]))
    assert points[-1].miss_rate_pct <= points[0].miss_rate_pct


def test_ablation_switching_time(benchmark, prewarmed, save_result):
    points = benchmark.pedantic(ablations.switching_time_sweep, rounds=1,
                                iterations=1)
    lines = ["t_switch_us  miss%  energy%"]
    for p in points:
        lines.append(f"{p.t_switch_us:11.2f} {p.miss_rate_pct:6.2f} "
                     f"{p.normalized_energy_pct:8.1f}")
    save_result("ablation_switching", "\n".join(lines))
    # ns-scale switching (Sec 4.2's faster regulators) saves energy
    # relative to the conservative 100us+ setting.
    assert (points[0].normalized_energy_pct
            <= points[-1].normalized_energy_pct + 1e-9)


def test_ablation_wait_elision(benchmark, prewarmed, save_result):
    result = benchmark.pedantic(ablations.elision_benefit, rounds=1,
                                iterations=1)
    save_result("ablation_elision", (
        f"{result.benchmark}: slice cycles with elision "
        f"{result.slice_cycles_with_elision}, without "
        f"{result.slice_cycles_without_elision} "
        f"(speedup {result.speedup:.1f}x)"
    ))
    # Sec 3.5: without elision the slice is no faster than the job.
    assert result.speedup > 5.0


def test_ablation_quantization(benchmark, prewarmed, save_result):
    """Fixed-point predictor coefficients (the hardware MAC reality)."""
    import numpy as np

    from repro.experiments import bundle_for
    from repro.model.quantize import quantization_sweep

    bundle = bundle_for("h264")
    x = np.array([r.features for r in bundle.test_records])

    def sweep():
        return quantization_sweep(bundle.package.predictor, x,
                                  fraction_bits=(0, 2, 4, 8, 12))

    points = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["fraction_bits  max_pct_delta_vs_float"]
    for bits, err in points:
        lines.append(f"{bits:13d}  {err:12.4f}")
    save_result("ablation_quantization", "\n".join(lines))
    by_bits = dict(points)
    # 8 fraction bits reproduce the float model to well under 0.5%.
    assert by_bits[8] < 0.5
    assert by_bits[12] <= by_bits[0]
