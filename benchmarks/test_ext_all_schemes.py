"""Extension bench: rank every implemented DVFS scheme."""

from repro.experiments import ext_all_schemes
from repro.experiments.schemes import average_row


def test_ext_all_schemes(benchmark, prewarmed, save_result):
    summaries = benchmark.pedantic(ext_all_schemes.run, rounds=1,
                                   iterations=1)
    save_result("ext_all_schemes", ext_all_schemes.to_text(summaries))
    avg = {s.scheme: s for s in summaries if s.benchmark == "average"}
    # The literature-section story, quantified on one set of jobs:
    # the oracle bounds everyone; prediction is the best real scheme
    # on the energy/miss frontier; table-based wastes energy on the
    # per-class worst case but misses almost never; reactive schemes
    # (history, pid, governor) all miss far more than prediction.
    assert avg["oracle"].normalized_energy_pct <= min(
        s.normalized_energy_pct for s in avg.values() if s.scheme != "oracle")
    assert avg["prediction"].miss_rate_pct < 2.0
    # Table-based misses only when a test job exceeds its class's
    # training worst case — rare, but not zero.
    assert avg["table"].miss_rate_pct < 4.0
    assert (avg["table"].normalized_energy_pct
            > avg["prediction"].normalized_energy_pct)
    for reactive in ("history", "pid", "governor"):
        assert avg[reactive].miss_rate_pct > 3 * max(
            avg["prediction"].miss_rate_pct, 0.5), reactive


def test_ext_visibility_predicts_error(benchmark, prewarmed, save_result):
    """Extension: the feature-visibility diagnostic anticipates Fig 10.

    The invisible-time share of each design (cycles in opaque serial
    stalls) upper-bounds how well any counter-based predictor can do;
    djpeg — the paper's error outlier — is the least visible design.
    """
    import numpy as np

    from repro.analysis.coverage import visibility_by_benchmark
    from repro.experiments import bundle_for
    from repro.model import PredictionReport
    from repro.workloads import ALL_BENCHMARKS

    def sweep():
        return visibility_by_benchmark(ALL_BENCHMARKS, scale=0.1,
                                       n_jobs=4)

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["bench     invisible%  mean|err|%"]
    errors = {}
    for name in ALL_BENCHMARKS:
        bundle = bundle_for(name)
        predicted = np.array(
            [r.predicted_cycles for r in bundle.test_records])
        actual = np.array(
            [float(r.actual_cycles) for r in bundle.test_records])
        err = PredictionReport.from_predictions(predicted,
                                                actual).mean_abs_pct
        errors[name] = err
        lines.append(f"{name:8s} {reports[name].invisible_fraction * 100:10.2f} "
                     f"{err:11.3f}")
    save_result("ext_visibility", "\n".join(lines))
    # djpeg is the least visible design and the least predictable one.
    worst_visibility = max(ALL_BENCHMARKS,
                           key=lambda n: reports[n].invisible_fraction)
    worst_error = max(ALL_BENCHMARKS, key=lambda n: errors[n])
    assert worst_visibility == worst_error == "djpeg"


def test_ext_mixed_resolutions(benchmark, prewarmed, save_result):
    """Extension: resolution-keyed table vs per-job prediction."""
    from repro.experiments import ext_resolutions

    result = benchmark.pedantic(ext_resolutions.run, rounds=1,
                                iterations=1)
    save_result("ext_resolutions", ext_resolutions.to_text(result))
    energy = result.normalized_energy_pct
    # The table helps (resolution explains coarse variation) but
    # prediction clearly beats it (within-resolution content variation
    # is invisible to the table) — Sec. 2.4's argument, quantified.
    assert energy["table"] < 95.0
    assert energy["prediction"] < energy["table"] - 5.0
    assert result.miss_rate_pct["prediction"] < 2.0


def test_ext_taxonomy(benchmark, prewarmed, save_result):
    """Extension: workload statistics explain the reactive penalty."""
    from repro.experiments import ext_taxonomy

    rows = benchmark.pedantic(ext_taxonomy.run, rounds=1, iterations=1)
    save_result("ext_taxonomy", ext_taxonomy.to_text(rows))
    by_corr = sorted(rows, key=lambda r: r.profile.lag1_autocorr)
    least = sum(r.reactive_penalty_pct for r in by_corr[:2]) / 2
    most = sum(r.reactive_penalty_pct for r in by_corr[-2:]) / 2
    # The less trackable the workload, the bigger the reactive
    # scheme's miss penalty (Sec. 2.4's taxonomy, measured).
    assert least >= most
    # Prediction's misses never depend on workload statistics.
    assert all(r.prediction_miss_pct < 7 for r in rows)
