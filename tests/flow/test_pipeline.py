"""End-to-end offline flow tests on the toy accelerator."""

import numpy as np
import pytest

from repro.flow import (
    FlowConfig,
    build_job_records,
    generate_predictor,
    training_records,
)
from repro.model import worst_case_error_pct
from tests.conftest import toy_workload


@pytest.fixture
def package(toy_package):
    return toy_package


def test_flow_produces_accurate_predictor(package):
    design, pkg = package
    jobs = toy_workload(30, seed=2)
    predictions = []
    actuals = []
    from repro.rtl import Simulation
    sim = Simulation(pkg.module, track_state_cycles=False)
    for items in jobs:
        job = design.encode_job(items)
        predicted, slice_cycles = pkg.run_slice(job)
        sim.reset()
        sim.load(*job.as_pair())
        actual = sim.run().cycles
        predictions.append(predicted)
        actuals.append(actual)
        assert slice_cycles < actual
    err = worst_case_error_pct(np.array(predictions), np.array(actuals))
    assert err < 2.0  # toy is fully feature-determined


def test_flow_selects_few_features(package):
    design, pkg = package
    assert 1 <= pkg.n_selected_features < pkg.n_candidate_features


def test_flow_slice_is_smaller(package):
    design, pkg = package
    assert pkg.slice_cost.area_fraction < 0.6
    assert pkg.slice_cost.asic_area_slice > 0


def test_auto_gamma_path(package):
    design, _ = package
    pkg = generate_predictor(design, toy_workload(60, seed=1),
                             FlowConfig(gamma=None))
    assert pkg.gamma > 0
    assert pkg.n_selected_features >= 1


def test_build_job_records(package):
    design, pkg = package
    items = toy_workload(8, seed=3)
    records = build_job_records(design, pkg, items)
    assert len(records) == 8
    for record in records:
        assert record.actual_cycles > 0
        assert record.predicted_cycles is not None
        assert record.slice_cycles > 0
        assert record.activity.cycles == record.actual_cycles
        # Datapath activity accounted per block.
        assert set(record.activity.block_cycles) == {"alu_a", "alu_b"}


def test_training_records_reuse_matrix(package):
    design, pkg = package
    items = toy_workload(60, seed=1)
    records = training_records(design, pkg, items)
    assert len(records) == 60
    assert records[0].predicted_cycles is None
    with pytest.raises(ValueError, match="do not match"):
        training_records(design, pkg, items[:5])


def test_slice_prediction_matches_full_features(package):
    """Predicting from slice-recorded features equals predicting from
    full-run features — the core slicing correctness property."""
    design, pkg = package
    from repro.analysis import FeatureRecorder
    from repro.rtl import Simulation
    for items in toy_workload(5, seed=4):
        job = design.encode_job(items)
        recorder = FeatureRecorder(pkg.feature_set)
        sim = Simulation(pkg.module, listener=recorder,
                         track_state_cycles=False)
        sim.load(*job.as_pair())
        sim.run()
        from_full = pkg.predictor.predict_one(recorder.vector())
        from_slice, _ = pkg.run_slice(job)
        assert from_slice == pytest.approx(max(from_full, 0.0), rel=1e-12)


def _featureless_design():
    # One register incremented by a conditional update rule, no FSMs,
    # no counters — feature discovery finds zero candidate signals.
    from repro.accelerators.base import AcceleratorDesign, JobInput
    from repro.rtl import Module, Sig
    from repro.units import MHZ

    class Featureless(AcceleratorDesign):
        name = "featureless"
        description = "register-update-only design with no features"
        task_description = "count to n"
        nominal_frequency = 100.0 * MHZ

        def _build(self):
            m = Module(self.name)
            m.port("n", 16)
            m.reg("t", 16)
            m.update("t", Sig("t") + 1, cond=Sig("t") < Sig("n"))
            m.set_done(Sig("t") >= Sig("n"))
            return m.finalize()

        def encode_job(self, item):
            return JobInput(inputs={"n": int(item)}, memories={},
                            coarse_param=int(item) // 8,
                            meta={"n": int(item)})

    return Featureless()


def test_empty_feature_set_raises_named_diagnostic():
    """Regression: zero discovered features must fail fast and named.

    Generated designs with no data-dependent waits used to train
    silently to an intercept-only model; the flow now refuses them up
    front with the design's name and the empty-feature cause.
    """
    design = _featureless_design()
    with pytest.raises(ValueError,
                       match="featureless.*no candidate slice features"):
        generate_predictor(design, [4, 9, 17, 30],
                           FlowConfig(gamma=1.0))
