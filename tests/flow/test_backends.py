"""Backend threading through the offline flow.

The flow must produce bit-identical artifacts under every simulation
backend, and the artifact-cache key for the recorded ``FeatureMatrix``
must not depend on the backend — a matrix recorded under ``interp``
is a warm hit for a ``stepjit`` rerun and vice versa.
"""

import numpy as np
import pytest

from repro.analysis import discover_features, record_jobs
from repro.flow import FlowConfig, build_job_records, generate_predictor
from repro.parallel import ArtifactCache, set_cache
from repro.rtl import BACKENDS, set_default_backend, synthesize
from tests.conftest import ToyDesign, toy_workload


@pytest.fixture(autouse=True)
def _clean_backend():
    set_default_backend(None)
    yield
    set_default_backend(None)


def _toy_record_parts():
    design = ToyDesign()
    module = design.build()
    feature_set = discover_features(module, synthesize(module))
    jobs = [design.encode_job(items).as_pair()
            for items in toy_workload(20, seed=3)]
    return module, feature_set, jobs


@pytest.mark.parametrize("backend", BACKENDS)
def test_record_jobs_is_backend_invariant(backend):
    module, feature_set, jobs = _toy_record_parts()
    baseline = record_jobs(module, feature_set, jobs, backend="interp")
    matrix = record_jobs(module, feature_set, jobs, backend=backend)
    assert np.array_equal(matrix.cycles, baseline.cycles)
    assert np.array_equal(matrix.x, baseline.x)


def test_flow_outputs_identical_across_backends():
    design = ToyDesign()
    items = toy_workload(25, seed=4)
    packages = {}
    for backend in ("interp", "stepjit", "batch"):
        set_default_backend(backend)
        packages[backend] = generate_predictor(
            design, items, FlowConfig(gamma=1e-4))
    a = packages["interp"]
    for backend in ("stepjit", "batch"):
        b = packages[backend]
        assert np.array_equal(a.train_matrix.cycles,
                              b.train_matrix.cycles)
        assert np.array_equal(a.train_matrix.x, b.train_matrix.x)
        assert a.gamma == b.gamma
        assert np.array_equal(a.predictor.coeffs, b.predictor.coeffs)
        assert a.predictor.intercept == b.predictor.intercept


def test_job_records_identical_across_backends():
    design = ToyDesign()
    items = toy_workload(25, seed=4)
    per_backend = {}
    for backend in ("interp", "stepjit", "batch"):
        set_default_backend(backend)
        package = generate_predictor(design, items, FlowConfig(gamma=1e-4))
        per_backend[backend] = build_job_records(
            design, package, toy_workload(8, seed=5))
    for backend in ("stepjit", "batch"):
        for rec_i, rec_s in zip(per_backend["interp"],
                                per_backend[backend]):
            assert rec_i.actual_cycles == rec_s.actual_cycles
            assert rec_i.slice_cycles == rec_s.slice_cycles
            assert rec_i.predicted_cycles == pytest.approx(
                rec_s.predicted_cycles)
            assert np.array_equal(rec_i.features, rec_s.features)
            assert rec_i.activity == rec_s.activity


def test_feature_matrix_cache_key_is_backend_invariant(tmp_path):
    """A matrix recorded under one backend warm-hits every other."""
    design = ToyDesign()
    items = toy_workload(25, seed=4)
    cache = ArtifactCache(tmp_path / "cache")
    set_cache(cache)
    try:
        set_default_backend("interp")
        generate_predictor(design, items, FlowConfig(gamma=1e-4))
        cold_puts = cache.stats.puts
        assert cold_puts >= 1
        for backend in ("stepjit", "batch"):
            set_default_backend(backend)
            generate_predictor(design, items, FlowConfig(gamma=1e-4))
            assert cache.stats.hits >= 1
            assert cache.stats.puts == cold_puts  # nothing re-recorded
    finally:
        set_cache(None)
