"""Unit tests for the utility layers: units, tech pricing, stats."""

import pytest

from repro.rtl.netlist import Cell, Netlist, Provenance
from repro.rtl import tech
from repro.units import (
    DVFS_SWITCH_TIME,
    FRAME_DEADLINE_60FPS,
    GHZ,
    MHZ,
    MS,
    TIME_EPS_REL,
    US,
    cycles_to_time,
    deadline_missed,
    format_frequency,
    format_time,
    time_to_cycles,
)


def test_paper_constants():
    assert FRAME_DEADLINE_60FPS == pytest.approx(16.7e-3)
    assert DVFS_SWITCH_TIME == pytest.approx(100e-6)


def test_cycles_time_roundtrip():
    assert cycles_to_time(250_000, 250 * MHZ) == pytest.approx(1 * MS)
    assert time_to_cycles(1 * MS, 250 * MHZ) == 250_000
    # Rounds up partial cycles.
    assert time_to_cycles(1.0000001 * MS, 250 * MHZ) == 250_001
    with pytest.raises(ValueError):
        cycles_to_time(10, 0.0)
    with pytest.raises(ValueError):
        time_to_cycles(1.0, -1.0)


def test_deadline_missed_epsilon_band():
    deadline = 10 * MS
    # Genuinely late and genuinely early are unambiguous.
    assert deadline_missed(deadline * 1.1, 0.0, deadline)
    assert not deadline_missed(deadline * 0.9, 0.0, deadline)
    # A finish a few ULPs past the boundary is rounding, not a miss ...
    assert not deadline_missed(deadline * (1 + 1e-12), 0.0, deadline)
    # ... but an overrun beyond the relative epsilon counts.
    assert deadline_missed(deadline * (1 + 3e-9), 0.0, deadline)
    # The band scales with the deadline and shifts with the release.
    release = 7 * deadline
    assert not deadline_missed(release + deadline * (1 + 1e-12),
                               release, deadline)
    assert TIME_EPS_REL == 1e-9


def test_format_helpers():
    assert format_time(7.56 * MS) == "7.56ms"
    assert format_time(2.5) == "2.5s"
    assert format_time(3 * US) == "3us"
    assert format_time(5e-9) == "5ns"
    assert format_frequency(250 * MHZ) == "250MHz"
    assert format_frequency(1.5 * GHZ) == "1.5GHz"
    assert format_frequency(3000.0) == "3kHz"
    assert format_frequency(50.0) == "50Hz"


def _cell(kind, width=16, param=0, count=1):
    return Cell(cid=0, kind=kind, out="o", fanin=(), width=width,
                provenance=Provenance("wire", "t"), param=param,
                count=count)


def test_asic_area_rules():
    assert tech.asic_cell_area(_cell("PORT")) == 0.0
    assert tech.asic_cell_area(_cell("CONST")) == 0.0
    # Multiplier area grows quadratically with width.
    narrow = tech.asic_cell_area(_cell("MUL", width=8))
    wide = tech.asic_cell_area(_cell("MUL", width=16))
    assert wide == pytest.approx(narrow * 4)
    # SRAM pricing: overhead + per bit.
    sram = tech.asic_cell_area(_cell("SRAM", param=1024))
    assert sram > tech.asic_cell_area(_cell("SRAM", param=512))
    # count multiplies area.
    assert tech.asic_cell_area(_cell("ADD", count=3)) \
        == pytest.approx(3 * tech.asic_cell_area(_cell("ADD")))


def test_asic_energy_rules():
    sram = _cell("SRAM", param=8192)
    logic = _cell("ADD")
    # SRAM toggles a small fraction of its area per access.
    assert (tech.asic_switch_energy_per_cycle(sram)
            < tech.asic_cell_area(sram) * 0.80e-15)
    assert tech.asic_switch_energy_per_cycle(logic) > 0
    assert tech.asic_leakage_power(1e6) > tech.asic_leakage_power(1e5)


def test_fpga_resource_rules():
    assert tech.fpga_cell_resources(_cell("DFF", width=8)).ffs == 8
    assert tech.fpga_cell_resources(_cell("MUL", width=16)).dsps == 1
    assert tech.fpga_cell_resources(_cell("MUL", width=32)).dsps == 2
    assert tech.fpga_cell_resources(
        _cell("SRAM", param=40_000)).brams > 1
    assert tech.fpga_cell_resources(_cell("PORT")).luts == 0


def test_fpga_fraction_ignores_unused_resource_types():
    total = tech.FpgaResources(luts=100, ffs=100, dsps=0, brams=0)
    part = tech.FpgaResources(luts=50, ffs=10)
    # Only LUTs count (DSP/BRAM totals are zero, FFs are excluded by
    # the paper's LUT/DSP/BRAM metric).
    assert part.fraction_of(total) == pytest.approx(0.5)


def test_netlist_stats_and_repr():
    nl = Netlist("x")
    nl.add("PORT", (), out="a")
    nl.add("ADD", ("a", "a"), out="b", count=2)
    assert nl.stats() == {"PORT": 1, "ADD": 2}
    assert "cells=2" in repr(nl)
    assert len(nl) == 2
    assert nl.readers("a")[0].out == "b"
