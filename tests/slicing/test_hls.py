"""Mini-C IR, program slicing and HLS scheduling tests."""

import pytest

from repro.rtl.expr import Const, Sig
from repro.slicing.hls import (
    ELEM,
    HlsSchedule,
    HlsSlicePredictor,
    Program,
    Statement,
    program_slice,
)


def sample_program():
    return Program(
        name="p",
        params=("n",),
        arrays=("data",),
        statements=(
            Statement("a", Sig("n") * 3),
            Statement("b", Sig("a") + 7),
            Statement("total", Sig(ELEM) * 2 + 1, array="data"),
            Statement("unused", Sig("n") - 1),
            Statement("combo", Sig("b") + Sig("total")),
        ),
    )


def test_program_rejects_undefined_reads():
    with pytest.raises(ValueError, match="undefined"):
        Program("p", params=(), arrays=(),
                statements=(Statement("x", Sig("ghost")),))


def test_program_rejects_double_assignment():
    with pytest.raises(ValueError, match="twice"):
        Program("p", params=("n",), arrays=(),
                statements=(Statement("x", Sig("n")),
                            Statement("x", Sig("n"))))


def test_evaluate_scalars_and_reductions():
    env = sample_program().evaluate({"n": 5}, {"data": [1, 2, 3]})
    assert env["a"] == 15
    assert env["b"] == 22
    assert env["total"] == (2 * 1 + 1) + (2 * 2 + 1) + (2 * 3 + 1)
    assert env["combo"] == env["b"] + env["total"]


def test_evaluate_empty_array():
    env = sample_program().evaluate({"n": 1}, {"data": []})
    assert env["total"] == 0


def test_program_slice_keeps_dependencies_only():
    sliced = program_slice(sample_program(), ["combo"])
    targets = [s.target for s in sliced.statements]
    assert "unused" not in targets
    assert set(targets) == {"a", "b", "total", "combo"}
    # Slicing to a leaf keeps just that chain.
    tiny = program_slice(sample_program(), ["a"])
    assert [s.target for s in tiny.statements] == ["a"]
    assert tiny.arrays == ()  # array input no longer needed


def test_program_slice_unknown_criterion():
    with pytest.raises(KeyError, match="not produced"):
        program_slice(sample_program(), ["ghost"])


def test_slice_evaluates_identically():
    program = sample_program()
    sliced = program_slice(program, ["combo"])
    full = program.evaluate({"n": 9}, {"data": [4, 4]})
    part = sliced.evaluate({"n": 9}, {"data": [4, 4]})
    assert part["combo"] == full["combo"]


def test_schedule_cycles_scale_with_trip_count():
    program = sample_program()
    schedule = HlsSchedule(program, unroll=4)
    small = schedule.cycles({"data": [0] * 8})
    large = schedule.cycles({"data": [0] * 800})
    assert large > small
    assert large - small == pytest.approx((800 - 8) / 4, abs=2)


def test_schedule_unroll_speeds_up():
    program = sample_program()
    narrow = HlsSchedule(program, unroll=1).cycles({"data": [0] * 400})
    wide = HlsSchedule(program, unroll=8).cycles({"data": [0] * 400})
    assert wide < narrow / 4


def test_schedule_cells_unrolled():
    program = sample_program()
    c1 = HlsSchedule(program, unroll=1).cells()
    c8 = HlsSchedule(program, unroll=8).cells()
    assert c8["MUL"] > c1["MUL"]  # the reduction's ops replicate


def test_hls_slice_predictor_end_to_end():
    program = sample_program()
    predictor = HlsSlicePredictor.build(
        program, {"feat:total": "total", "feat:a": "a"}, unroll=2)
    values, cycles = predictor.run({"n": 3}, {"data": [5, 5, 5]})
    assert values["feat:total"] == 33
    assert values["feat:a"] == 9
    assert cycles > 0
    # 'unused' and 'combo'/'b' are not in the sliced program.
    targets = {s.target for s in predictor.program.statements}
    assert targets == {"a", "total"}
