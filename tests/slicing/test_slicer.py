"""Hardware slicing tests on the toy accelerator."""

import numpy as np
import pytest

from repro.analysis import FeatureRecorder, discover_features, record_jobs
from repro.rtl import Simulation, synthesize
from repro.slicing import (
    build_slice,
    compute_slice_cost,
    elidable_dynamic_waits,
    elidable_wait_states,
)
from tests.conftest import build_toy, pack_item


@pytest.fixture(scope="module")
def sliced():
    module = build_toy()
    netlist = synthesize(module)
    features = discover_features(module, netlist)
    hw_slice = build_slice(module, features)
    return module, netlist, features, hw_slice


def test_elidable_wait_states_respects_feeds_control():
    module = build_toy()
    assert elidable_wait_states(module) == {
        ("ctrl", "COMP_A"), ("ctrl", "COMP_B"),
    }
    assert elidable_dynamic_waits(module) == frozenset()


def test_slice_drops_datapath(sliced):
    _, _, _, hw_slice = sliced
    assert not hw_slice.module.datapath_blocks
    kinds = {c.provenance.construct for c in hw_slice.netlist}
    assert "datapath" not in kinds


def test_slice_area_is_small_fraction(sliced):
    _, netlist, _, hw_slice = sliced
    cost = compute_slice_cost(netlist, hw_slice.netlist)
    assert 0.0 < cost.area_fraction < 0.5
    assert 0.0 < cost.resource_fraction < 1.0


def test_slice_runs_much_faster(sliced):
    module, _, _, hw_slice = sliced
    items = [pack_item(100, m % 2) for m in range(8)]
    full = Simulation(module)
    full.load(inputs={"n_items": 8}, memories={"items": items})
    full_cycles = full.run().cycles
    fast = Simulation(hw_slice.module)
    fast.load(inputs={"n_items": 8}, memories={"items": items})
    result = fast.run()
    assert result.finished
    assert result.cycles < full_cycles / 10


def test_slice_computes_identical_features(sliced):
    module, _, features, hw_slice = sliced
    jobs = []
    rng = np.random.default_rng(1)
    for _ in range(5):
        n = int(rng.integers(1, 10))
        items = [pack_item(int(rng.integers(0, 200)),
                           int(rng.integers(0, 2))) for _ in range(n)]
        jobs.append(({"n_items": n}, {"items": items}))
    full = record_jobs(module, features, jobs)
    sliced_mat = record_jobs(hw_slice.module, features, jobs)
    np.testing.assert_array_equal(full.x, sliced_mat.x)


def test_slice_with_subset_of_features_drops_unused_counters(sliced):
    module, _, features, _ = sliced
    # Keep only features about counter c_a.
    keep = [s for s in features if s.source == "c_a"]
    hw_slice = build_slice(module, keep)
    assert "c_b" in hw_slice.dropped_counters
    assert "c_a" not in hw_slice.dropped_counters
    # The slice still terminates (done logic retained).
    sim = Simulation(hw_slice.module)
    items = [pack_item(50, 0), pack_item(50, 1)]
    sim.load(inputs={"n_items": 2}, memories={"items": items})
    assert sim.run().finished


def test_subset_slice_is_smaller(sliced):
    module, netlist, features, full_slice = sliced
    keep = [s for s in features if s.source == "c_a"]
    small = build_slice(module, keep)
    from repro.rtl import tech
    assert tech.asic_area(small.netlist) <= tech.asic_area(full_slice.netlist)


def test_slice_cycle_count_matches_step_structure(sliced):
    module, _, _, hw_slice = sliced
    items = [pack_item(250, 1)] * 3
    sim = Simulation(hw_slice.module)
    sim.load(inputs={"n_items": 3}, memories={"items": items})
    result = sim.run()
    # Elided: IDLE(1) + per item FETCH(1)+COMP(1)+EMIT(1).
    assert result.cycles == 1 + 3 * 3
