"""Cross-module properties the paper's framework rests on.

These run real benchmark designs at a tiny workload scale (bundles are
cached per session by the runner), checking the invariants that make
slice-based prediction sound:

* the hardware slice computes the same feature values as the full
  accelerator, while running much faster;
* the HLS-level slice computes the same features again, faster still;
* the software predictor produces identical predictions to the
  hardware slice;
* the predictive controller's decisions respect level monotonicity.
"""

import numpy as np
import pytest

from repro.analysis import record_jobs
from repro.experiments import tech_context
from repro.experiments.fig18_hls import build_hls_predictor
from repro.flow.software import SoftwarePredictor

SCALE = 0.12


@pytest.fixture
def h264_bundle(shared_bundle):
    return shared_bundle("h264", SCALE)


@pytest.mark.parametrize("name", ["h264", "cjpeg", "aes"])
def test_slice_features_equal_full_features(name, shared_bundle):
    bundle = shared_bundle(name, SCALE)
    package = bundle.package
    jobs = [bundle.design.encode_job(item).as_pair()
            for item in bundle.workload.test[:4]]
    full = record_jobs(package.module, package.feature_set, jobs)
    sliced = record_jobs(package.hw_slice.module, package.feature_set,
                         jobs, ignore_unknown_inputs=True)
    # Restrict to the features the slice was built for (others may
    # legitimately read zero in the slice).
    selected = package.predictor.selected_indices
    np.testing.assert_array_equal(full.x[:, selected],
                                  sliced.x[:, selected])
    # And the slice is an order of magnitude faster.
    assert (sliced.cycles < full.cycles / 5).all()


@pytest.mark.parametrize("name", ["md", "stencil"])
def test_hls_slice_matches_rtl_prediction(name, shared_bundle):
    bundle = shared_bundle(name, SCALE)
    predictor = build_hls_predictor(bundle)
    names = bundle.package.feature_set.names()
    for item, record in zip(bundle.workload.test[:6],
                            bundle.test_records[:6]):
        job = bundle.design.encode_job(item)
        values, cycles = predictor.run(job.inputs, job.memories)
        vector = np.array([values.get(n, 0.0) for n in names])
        hls_pred = bundle.package.predictor.predict_one(vector)
        assert hls_pred == pytest.approx(record.predicted_cycles,
                                         rel=1e-9)
        assert cycles < record.slice_cycles or record.slice_cycles < 50


def test_software_predictor_matches_hardware_slice(h264_bundle):
    bundle = h264_bundle
    sw = SoftwarePredictor.build("h264", bundle.package.predictor)
    for item, record in zip(bundle.workload.test[:6],
                            bundle.test_records[:6]):
        job = bundle.design.encode_job(item)
        predicted, overhead = sw.predict(job)
        assert predicted == pytest.approx(record.predicted_cycles,
                                          rel=1e-9)
        assert 0 < overhead < 1e-3  # microsecond-scale CPU time


def test_software_predictor_unknown_design(h264_bundle):
    with pytest.raises(KeyError, match="no software implementation"):
        SoftwarePredictor.build("sha", h264_bundle.package.predictor)


def test_predictive_levels_monotone_in_predicted_cycles(h264_bundle):
    """Bigger predictions never get slower levels (budget fixed)."""
    from dataclasses import replace

    from repro.experiments import make_controller

    ctx = tech_context(h264_bundle, tech="asic")
    controller = make_controller(ctx, "prediction")
    record = h264_bundle.test_records[0]
    budget = ctx.config.deadline
    last_freq = 0.0
    for cycles in np.linspace(1e5, 4.2e6, 25):
        plan = controller.plan(
            replace(record, predicted_cycles=float(cycles)), budget)
        assert plan.point.frequency >= last_freq
        last_freq = plan.point.frequency


def test_job_records_are_internally_consistent(h264_bundle):
    f0 = h264_bundle.design.nominal_frequency
    for record in h264_bundle.test_records:
        # Predictions are in the right ballpark of the truth.
        ratio = record.predicted_cycles / record.actual_cycles
        assert 0.8 < ratio < 1.2
        # Slice adds a small fraction of the job's own time.
        assert record.slice_cycles < 0.2 * record.actual_cycles
        # Activity never exceeds total cycles.
        for cycles in record.activity.block_cycles.values():
            assert 0 <= cycles <= record.actual_cycles


def test_bundle_cache_returns_same_object(shared_bundle):
    from repro.experiments import bundle_for
    a = shared_bundle("cjpeg", SCALE)
    b = bundle_for("cjpeg", SCALE)
    assert a is b
