"""Soak: a 10k-job stream across every accelerator, strict-checked.

Serves all seven benchmarks under both predictive schemes
concurrently with ``REPRO_CHECK=strict``, so every stream is replayed
through :func:`repro.check.check_stream` as it finishes — a single
accounting drift anywhere in the serving path raises.  Seeded
arrivals keep the whole soak bit-reproducible.
"""

import pytest

from repro.experiments import make_controller, tech_context
from repro.serve import (
    AcceleratorStream,
    RecordPredictor,
    ServeConfig,
    build_stream_jobs,
    poisson_arrivals,
    serve_streams,
)
from repro.workloads import ALL_BENCHMARKS

SCALE = 0.05
SCHEMES = ("prediction", "prediction_boost")
JOBS_PER_STREAM = 715   # 7 benchmarks x 2 schemes x 715 ~ 10k jobs
RATE = 200.0            # jobs/s on the virtual clock


@pytest.fixture(scope="module")
def soak_results(shared_bundle):
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CHECK", "strict")
    try:
        streams = []
        for i, name in enumerate(ALL_BENCHMARKS):
            bundle = shared_bundle(name, SCALE)
            ctx = tech_context(bundle, tech="asic")
            for j, scheme in enumerate(SCHEMES):
                arrivals = poisson_arrivals(
                    RATE, n_jobs=JOBS_PER_STREAM,
                    seed=1000 + 10 * i + j)
                jobs = build_stream_jobs(bundle, arrivals)
                config = ServeConfig(deadline=ctx.config.deadline,
                                     t_switch=ctx.config.t_switch)
                streams.append((AcceleratorStream(
                    name, make_controller(ctx, scheme),
                    ctx.energy_model, ctx.slice_energy_model,
                    predictor=RecordPredictor(), config=config), jobs))
        # Strict mode: any invariant violation raises InvariantError
        # inside serve_streams — reaching the return IS the assertion.
        return serve_streams(streams, realtime=False)
    finally:
        patch.undo()


def test_soak_covers_ten_thousand_jobs(soak_results):
    total = sum(r.n_offered for r in soak_results)
    assert total == len(ALL_BENCHMARKS) * len(SCHEMES) * JOBS_PER_STREAM
    assert total >= 10_000


def test_soak_conserves_every_stream(soak_results):
    for result in soak_results:
        assert len(result.outcomes) == result.n_offered
        assert (result.n_completed + result.n_fallback + result.n_shed
                == result.n_offered)
        indices = [o.index for o in result.outcomes]
        assert indices == sorted(set(indices))


def test_soak_fallback_rate_is_bounded(soak_results):
    """Record replay carries a prediction for every job, so the
    degraded path must stay exceptional across the whole soak."""
    for result in soak_results:
        assert result.fallback_rate <= 0.01, \
            f"{result.stream}/{result.scheme} degraded too often"


def test_soak_executes_work_everywhere(soak_results):
    for result in soak_results:
        assert result.n_completed > 0
        assert result.total_energy > 0.0
        assert result.makespan > 0.0
