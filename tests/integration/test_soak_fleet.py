"""Fleet soak: 10k+ mixed multi-tenant jobs, every policy, strict.

One mixed stream per routing policy over a heterogeneous two-benchmark
pool, served with ``REPRO_CHECK=strict`` — so every shard replays
through :func:`repro.check.check_stream` *and* the whole run replays
through :func:`repro.check.check_fleet` inside :func:`serve_fleet`.
Reaching the fixture's return means zero conservation violations
across all four policies; seeded arrivals keep it bit-reproducible.
"""

import pytest

from repro.experiments import make_controller, tech_context
from repro.serve import (
    POLICIES,
    FleetConfig,
    RecordPredictor,
    ServeConfig,
    ShardSpec,
    TenantSpec,
    build_mixed_stream,
    poisson_arrivals,
    serve_fleet,
)

SCALE = 0.05
BENCHMARKS = ("cjpeg", "aes")
INSTANCES_PER_BENCHMARK = 2
JOBS_PER_POLICY = 2_600      # x 4 policies ~ 10.4k jobs
RATE = 400.0                 # jobs/s on the virtual clock
TENANTS = (TenantSpec("gold"),
           TenantSpec("free", rate=150.0, burst=20.0))


@pytest.fixture(scope="module")
def fleet_soak(shared_bundle):
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CHECK", "strict")
    try:
        bundles = {name: shared_bundle(name, SCALE)
                   for name in BENCHMARKS}
        contexts = {name: tech_context(bundle, tech="asic")
                    for name, bundle in bundles.items()}

        def make_specs():
            specs = []
            for name in BENCHMARKS:
                ctx = contexts[name]
                config = ServeConfig(deadline=ctx.config.deadline,
                                     t_switch=ctx.config.t_switch,
                                     queue_depth=16)
                for k in range(INSTANCES_PER_BENCHMARK):
                    specs.append(ShardSpec(
                        name=f"{name}#{k}", benchmark=name,
                        controller=make_controller(ctx, "prediction"),
                        energy_model=ctx.energy_model,
                        slice_energy_model=ctx.slice_energy_model,
                        predictor=RecordPredictor(),
                        config=config))
            return specs

        results = {}
        for i, policy in enumerate(POLICIES):
            arrivals = poisson_arrivals(RATE, n_jobs=JOBS_PER_POLICY,
                                        seed=2000 + i)
            jobs = build_mixed_stream(
                bundles, arrivals, seed=2000 + i,
                tenants=tuple(t.name for t in TENANTS))
            # Strict mode: serve_fleet replays check_fleet and raises
            # on any violation — reaching the return IS the assertion.
            results[policy] = serve_fleet(
                make_specs(), jobs, FleetConfig(policy=policy),
                tenants=TENANTS, workers=1)
        return results
    finally:
        patch.undo()


def test_fleet_soak_covers_ten_thousand_jobs(fleet_soak):
    total = sum(r.n_offered for r in fleet_soak.values())
    assert total == len(POLICIES) * JOBS_PER_POLICY
    assert total >= 10_000


def test_fleet_soak_conserves_under_every_policy(fleet_soak):
    for policy, result in fleet_soak.items():
        assert result.policy == policy
        assert (result.n_completed + result.n_fallback + result.n_shed
                == result.n_offered), policy
        settled = (len(result.sheds)
                   + sum(r.n_offered for r in result.shards))
        assert settled == result.n_offered, policy


def test_fleet_soak_conserves_per_tenant(fleet_soak):
    for policy, result in fleet_soak.items():
        summary = result.tenant_summary()
        assert set(summary) == {t.name for t in TENANTS}, policy
        for tenant, row in summary.items():
            assert row["offered"] == (row["completed"]
                                      + row["fallback"]
                                      + row["shed"]), (policy, tenant)
            assert row["offered"] > 0, (policy, tenant)


def test_fleet_soak_rate_limits_bite(fleet_soak):
    """The free tier's bucket (150 jobs/s of a ~200 jobs/s share) must
    actually shed somewhere across the soak — otherwise the limiter
    was never exercised."""
    limited = sum(
        1
        for result in fleet_soak.values()
        for shed in result.sheds
        if shed.reason == "rate_limit")
    assert limited > 0
    for result in fleet_soak.values():
        assert all(s.tenant == "free" for s in result.sheds
                   if s.reason == "rate_limit")


def test_fleet_soak_executes_work_everywhere(fleet_soak):
    for policy, result in fleet_soak.items():
        assert result.n_completed > 0, policy
        assert result.total_energy > 0.0, policy
        for spec, shard in zip(result.specs, result.shards):
            if shard.n_offered:
                assert shard.n_completed > 0, (policy, spec.name)
