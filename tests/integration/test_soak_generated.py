"""Soak: generated accelerators served strictly under every scenario.

The generative twin of ``test_soak_stream``: three sampled designs
(one per complexity tier) go through the whole offline flow, then
serve seeded streams under ``REPRO_CHECK=strict`` across the
adversarial scenario knobs — Poisson baseline, front-loaded bursts,
variable-frame-rate arrivals with alternating job sizes, and
mixed-deadline service classes.  Strict mode replays every finished
stream through :func:`repro.check.check_stream`, so reaching the
assertions at all proves the serving invariants on designs nobody
hand-tuned.
"""

import pytest

from repro.experiments import make_controller, tech_context
from repro.gen import sample_design
from repro.gen.conformance import build_generated_bundle
from repro.serve import (
    AcceleratorStream,
    DeadlineClass,
    RecordPredictor,
    ServeConfig,
    adversarial_order,
    burst_arrivals,
    poisson_arrivals,
    serve_streams,
    split_by_deadline,
    stream_from_records,
    vfr_arrivals,
)

#: (seed, complexity) of the three soaked designs — one per tier.
DESIGNS = ((0, "small"), (2, "medium"), (4, "large"))
JOBS_PER_STREAM = 120


@pytest.fixture(scope="module")
def soak_results():
    """Serve every (design, scenario) stream strictly; list of
    (design name, scenario, StreamResult)."""
    patch = pytest.MonkeyPatch()
    patch.setenv("REPRO_CHECK", "strict")
    try:
        streams = []
        labels = []
        for seed, complexity in DESIGNS:
            design = sample_design(seed, complexity)
            bundle = build_generated_bundle(design, n_train=20,
                                            n_test=10)
            ctx = tech_context(bundle, tech="asic")
            records = bundle.test_records
            mean_cycles = (sum(r.actual_cycles for r in records)
                           / len(records))
            mean_t = mean_cycles / design.nominal_frequency
            rate = 0.6 / mean_t
            deadline = 4.0 * mean_t

            def _stream(jobs, stream_deadline, scenario):
                config = ServeConfig(deadline=stream_deadline,
                                     t_switch=ctx.config.t_switch)
                streams.append((AcceleratorStream(
                    f"{design.name}:{scenario}",
                    make_controller(ctx, "prediction"),
                    ctx.energy_model, ctx.slice_energy_model,
                    predictor=RecordPredictor(), config=config), jobs))
                labels.append((design.name, scenario))

            _stream(stream_from_records(
                records,
                poisson_arrivals(rate, n_jobs=JOBS_PER_STREAM,
                                 seed=seed)), deadline, "poisson")
            _stream(stream_from_records(
                adversarial_order(records, "front_loaded", seed=seed),
                burst_arrivals(rate, duration=JOBS_PER_STREAM / rate,
                               seed=seed)), deadline, "burst")
            _stream(stream_from_records(
                adversarial_order(records, "alternating", seed=seed),
                vfr_arrivals(rate, n_jobs=JOBS_PER_STREAM,
                             seed=seed)), deadline, "vfr")
            classes = (DeadlineClass("tight", deadline * 0.5),
                       DeadlineClass("loose", deadline * 2.0,
                                     weight=2.0))
            parts = split_by_deadline(
                adversarial_order(records, "ramp", seed=seed),
                classes, seed=seed)
            for k, cls in enumerate(classes):
                _stream(stream_from_records(
                    parts[cls.name],
                    poisson_arrivals(rate / 2,
                                     n_jobs=JOBS_PER_STREAM // 2,
                                     seed=seed * 31 + k)),
                    cls.deadline, f"deadline_{cls.name}")
        # Strict mode: any invariant violation raises inside
        # serve_streams — reaching the return IS the assertion.
        results = serve_streams(streams, realtime=False)
        return [(name, scenario, result)
                for (name, scenario), result in zip(labels, results)]
    finally:
        patch.undo()


def test_soak_covers_every_design_and_scenario(soak_results):
    seen = {(name, scenario) for name, scenario, _ in soak_results}
    names = {name for name, _, _ in soak_results}
    assert len(names) == len(DESIGNS)
    for name in names:
        scenarios = {s for n, s, _ in soak_results if n == name}
        assert scenarios == {"poisson", "burst", "vfr",
                             "deadline_tight", "deadline_loose"}
    assert len(seen) == len(DESIGNS) * 5


def test_soak_conserves_every_stream(soak_results):
    for name, scenario, result in soak_results:
        assert len(result.outcomes) == result.n_offered, (name, scenario)
        assert (result.n_completed + result.n_fallback + result.n_shed
                == result.n_offered), (name, scenario)
        indices = [o.index for o in result.outcomes]
        assert indices == sorted(set(indices)), (name, scenario)


def test_soak_executes_work_everywhere(soak_results):
    for name, scenario, result in soak_results:
        assert result.n_completed > 0, (name, scenario)
        assert result.total_energy > 0.0, (name, scenario)
        assert result.makespan > 0.0, (name, scenario)


def test_soak_fallback_is_exceptional(soak_results):
    """Record replay carries a prediction for every job, so the
    degraded path must stay exceptional on generated designs too."""
    for name, scenario, result in soak_results:
        assert result.fallback_rate <= 0.01, (name, scenario)
