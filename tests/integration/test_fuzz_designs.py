"""Property tests over randomly generated accelerator designs.

A design generator builds random-but-valid pipelines in the RTL IR:
an item loop whose stages are plain states, counter waits with affine
data-dependent latencies, or dynamic waits, plus optional event
counters and registers.  Every framework invariant must hold for every
generated design:

* structural detection finds exactly the FSM and all counters;
* fast-forward simulation is cycle-exact vs plain stepping;
* the compiled backend is cycle-exact vs the interpreter;
* the hardware slice computes identical features to the full design;
* the Verilog exporter renders it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import detect_counters, detect_fsms, discover_features, record_jobs
from repro.rtl import (
    Fsm,
    MemRead,
    Module,
    Sig,
    Simulation,
    compile_module,
    down_counter,
    synthesize,
    to_verilog,
    up_counter,
)
from repro.slicing import build_slice


@dataclass(frozen=True)
class StageSpec:
    kind: str        # "plain" | "wait" | "dyn"
    base: int        # constant latency part
    coeff: int       # per-field-unit latency
    field: int       # which packed data field drives it (0 or 1)


def build_random_module(stages: Tuple[StageSpec, ...],
                        with_up_counter: bool) -> Module:
    m = Module("fuzz")
    n_items = m.port("n_items", 8)
    m.memory("data", depth=64, width=12)
    idx = m.reg("idx", 8)
    word = m.wire("word", MemRead("data", Sig("idx")), 12)
    m.wire("f0", Sig("word") & 0x3F, 6)
    m.wire("f1", (Sig("word") >> 6) & 0x3F, 6)

    fsm = Fsm("ctrl", initial="IDLE")
    names = [f"S{i}" for i in range(len(stages))]
    fsm.transition("IDLE", names[0], cond=n_items > 0)
    for i, name in enumerate(names[:-1]):
        fsm.transition(name, names[i + 1])
    fsm.transition(names[-1], "EMIT")
    fsm.transition("EMIT", names[0], cond=idx < (n_items - 1),
                   actions=[("idx", idx + 1)])
    fsm.transition("EMIT", "DONE", actions=[("idx", idx + 1)])

    for i, (name, spec) in enumerate(zip(names, stages)):
        value = Sig(f"f{spec.field}") * spec.coeff + spec.base
        if spec.kind == "wait":
            fsm.wait_state(name, f"c{i}")
        elif spec.kind == "dyn":
            fsm.dynamic_wait(name, value)
    m.fsm(fsm)
    for i, (name, spec) in enumerate(zip(names, stages)):
        if spec.kind == "wait":
            entering = (fsm.arc_signal("IDLE", name) if i == 0
                        else fsm.arc_signal(names[i - 1], name))
            load_cond = entering
            if i == 0:
                load_cond = fsm.entry_signal(name)  # loop + initial entry
            value = Sig(f"f{spec.field}") * spec.coeff + spec.base
            m.counter(down_counter(f"c{i}", load_cond=load_cond,
                                   load_value=value, width=16))
    if with_up_counter:
        m.counter(up_counter(
            "emitted", reset_cond=fsm.arc_signal("EMIT", "DONE"),
            enable=fsm.entry_signal("EMIT"), width=8,
        ))
    m.set_done(Sig("ctrl__state") == fsm.code_of("DONE"))
    return m.finalize()


stage_strategy = st.builds(
    StageSpec,
    kind=st.sampled_from(["plain", "wait", "wait", "dyn"]),
    base=st.integers(0, 40),
    coeff=st.integers(0, 20),
    field=st.integers(0, 1),
)

design_strategy = st.tuples(
    st.lists(stage_strategy, min_size=1, max_size=4).map(tuple),
    st.booleans(),
)

items_strategy = st.lists(st.integers(0, (1 << 12) - 1),
                          min_size=1, max_size=6)


@settings(max_examples=25, deadline=None)
@given(design=design_strategy, items=items_strategy)
def test_detection_complete_on_random_designs(design, items):
    stages, with_up = design
    module = build_random_module(stages, with_up)
    netlist = synthesize(module)
    detected_fsms = {f.state_net for f in detect_fsms(netlist)}
    assert "ctrl__state" in detected_fsms
    detected_counters = {c.net: c.mode for c in detect_counters(netlist)}
    for name, counter in module.counters.items():
        assert detected_counters.get(name) == counter.mode


@settings(max_examples=25, deadline=None)
@given(design=design_strategy, items=items_strategy)
def test_fast_forward_exact_on_random_designs(design, items):
    stages, with_up = design
    module = build_random_module(stages, with_up)
    results = []
    for ff in (True, False):
        sim = Simulation(module, fast_forward=ff)
        sim.load(inputs={"n_items": len(items)}, memories={"data": items})
        results.append(sim.run(max_cycles=500_000))
    assert results[0].finished and results[1].finished
    assert results[0].cycles == results[1].cycles
    assert results[0].state_cycles == results[1].state_cycles


@settings(max_examples=15, deadline=None)
@given(design=design_strategy, items=items_strategy)
def test_compiled_exact_on_random_designs(design, items):
    stages, with_up = design
    module = build_random_module(stages, with_up)
    compiled = compile_module(module)
    results = []
    for mod in (module, compiled):
        sim = Simulation(mod)
        sim.load(inputs={"n_items": len(items)}, memories={"data": items})
        results.append(sim.run(max_cycles=500_000))
    assert results[0].cycles == results[1].cycles
    assert results[0].state_cycles == results[1].state_cycles


@settings(max_examples=15, deadline=None)
@given(design=design_strategy, items=items_strategy)
def test_slice_features_equal_on_random_designs(design, items):
    stages, with_up = design
    module = build_random_module(stages, with_up)
    netlist = synthesize(module)
    features = discover_features(module, netlist)
    hw_slice = build_slice(module, features)
    jobs = [({"n_items": len(items)}, {"data": items})]
    full = record_jobs(module, features, jobs, max_cycles=500_000)
    sliced = record_jobs(hw_slice.module, features, jobs,
                         max_cycles=500_000,
                         ignore_unknown_inputs=True)
    np.testing.assert_array_equal(full.x, sliced.x)
    assert sliced.cycles[0] <= full.cycles[0]


@settings(max_examples=10, deadline=None)
@given(design=design_strategy)
def test_verilog_exports_random_designs(design):
    stages, with_up = design
    module = build_random_module(stages, with_up)
    text = to_verilog(module)
    assert "module fuzz (" in text
    assert text.count("endmodule") == 1
    for counter in module.counters:
        assert counter in text
