"""check_stream catches every class of tampering it claims to."""

from dataclasses import replace

import pytest

from repro.check import (
    STREAM_MUTATIONS,
    InvariantError,
    run_mutation_smoke,
    seed_double_counted_fallback_energy,
    seed_dropped_job_on_overflow,
)
from repro.dvfs import HistoryController
from repro.runtime import run_episode
from repro.serve import FALLBACK, SHED, StreamResult, serve_stream
from repro.units import DVFS_SWITCH_TIME, MS
from tests.conftest import TASK, FlatEnergyModel, job

from .conftest import stream_records, violations_of


def spaced(records, gap):
    from repro.serve import stream_from_records
    return stream_from_records(records,
                               [i * gap for i in range(len(records))])


@pytest.fixture
def mixed(make_stream, asic_levels):
    """A served stream with all three terminal states present."""
    records = stream_records(asic_levels, n=40)
    broken = [replace(r, predicted_cycles=None) if i % 5 == 0 else r
              for i, r in enumerate(records)]
    stream = make_stream(queue_depth=3)
    result = serve_stream(stream, spaced(broken, 0.5 * MS))
    assert result.n_completed and result.n_fallback and result.n_shed
    assert violations_of(stream, result) == []
    return stream, result


def tampered(result, **changes):
    return StreamResult(stream=result.stream, scheme=result.scheme,
                        deadline=result.deadline,
                        n_offered=result.n_offered,
                        wall_s=result.wall_s,
                        outcomes=list(result.outcomes), **changes)


def codes(violations):
    return {v.code for v in violations}


def test_clean_stream_has_no_violations(mixed):
    stream, result = mixed
    assert violations_of(stream, result) == []


def test_dropped_job_caught(mixed):
    stream, result = mixed
    mutated = seed_dropped_job_on_overflow(result)
    assert "stream.conservation" in codes(violations_of(stream, mutated))


def test_double_counted_fallback_energy_caught(mixed):
    stream, result = mixed
    mutated = seed_double_counted_fallback_energy(result)
    assert "energy.recompute" in codes(violations_of(stream, mutated))


def test_mutations_require_applicable_stream(mixed):
    """Seeding on a stream without the precondition refuses loudly."""
    stream, result = mixed
    clean = tampered(result)
    clean.outcomes = [o for o in result.outcomes if o.status != SHED]
    clean.n_offered = len(clean.outcomes)
    with pytest.raises(ValueError, match="no shed job"):
        seed_dropped_job_on_overflow(clean)
    clean.outcomes = [o for o in clean.outcomes
                      if o.status != FALLBACK]
    clean.n_offered = len(clean.outcomes)
    with pytest.raises(ValueError, match="no fallback job"):
        seed_double_counted_fallback_energy(clean)


def test_unknown_terminal_state_caught(mixed):
    stream, result = mixed
    bad = tampered(result)
    bad.outcomes[0] = replace(bad.outcomes[0], status="limbo")
    assert "stream.terminal" in codes(violations_of(stream, bad))


def test_duplicated_outcome_caught(mixed):
    stream, result = mixed
    bad = tampered(result)
    bad.outcomes[1] = replace(bad.outcomes[1],
                              index=bad.outcomes[0].index)
    assert "stream.conservation" in codes(violations_of(stream, bad))


def test_shed_with_energy_caught(mixed):
    stream, result = mixed
    bad = tampered(result)
    i = next(i for i, o in enumerate(bad.outcomes)
             if o.status == SHED)
    bad.outcomes[i] = replace(bad.outcomes[i], energy=1e-6)
    assert "stream.shed" in codes(violations_of(stream, bad))


def test_fallback_with_slice_time_caught(mixed):
    stream, result = mixed
    bad = tampered(result)
    i = next(i for i, o in enumerate(bad.outcomes)
             if o.status == FALLBACK)
    bad.outcomes[i] = replace(bad.outcomes[i], t_slice=1e-5)
    assert "stream.fallback" in codes(violations_of(stream, bad))


def test_timeline_gap_caught(mixed):
    stream, result = mixed
    bad = tampered(result)
    i = next(i for i, o in enumerate(bad.outcomes) if o.executed)
    bad.outcomes[i] = replace(bad.outcomes[i],
                              start=bad.outcomes[i].start + 1 * MS)
    assert "stream.timeline" in codes(violations_of(stream, bad))


def test_strict_serve_raises_on_violation(make_stream, asic_levels,
                                          monkeypatch):
    """REPRO_CHECK=strict wires check_stream into serve_streams."""
    import repro.serve.server as server_mod

    records = stream_records(asic_levels, n=6)
    stream = make_stream()  # strict=None -> follow REPRO_CHECK
    monkeypatch.setenv("REPRO_CHECK", "strict")

    original = server_mod.AcceleratorStream.result

    def corrupting_result(self, wall_s=0.0):
        result = original(self, wall_s)
        result.outcomes[0] = replace(result.outcomes[0], energy=99.0)
        return result

    monkeypatch.setattr(server_mod.AcceleratorStream, "result",
                        corrupting_result)
    with pytest.raises(InvariantError):
        serve_stream(stream, spaced(records, 20 * MS))


def test_mutation_smoke_covers_stream_bugs(mixed, asic_levels):
    """run_mutation_smoke(stream=...) exercises both serve-layer bugs
    alongside the episode-layer ones, and every one is caught."""
    stream, result = mixed
    model = FlatEnergyModel()
    light = int(asic_levels.nominal.frequency * 2 * MS)
    heavy = int(asic_levels.nominal.frequency * 8 * MS)
    jobs = [job(i, heavy if i % 4 == 3 else light) for i in range(12)]
    ctrl = HistoryController(asic_levels, DVFS_SWITCH_TIME)
    episode = run_episode(ctrl, jobs, TASK, model)
    report = run_mutation_smoke(episode, model,
                                slice_energy_model=model,
                                levels=asic_levels,
                                stream=result)
    for name in STREAM_MUTATIONS:
        assert name in report
        assert report[name], f"mutation {name} was not caught"
