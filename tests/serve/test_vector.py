"""Differential tests: the vectorized decision plane vs the scalar
reference engine.

Every test here serves the *same* jobs through both engines and
demands bit-identity on the :func:`repro.serve.virtual_outcomes`
canonical form — not approximate equality.  The epoch engine's whole
contract is that vectorization is an implementation detail invisible
in the results.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.check import check_epochs
from repro.dvfs import (
    AsicEnergyModel,
    ConstantFrequencyController,
    OracleController,
    PidController,
    PidGains,
    PredictiveController,
    TableBasedController,
)
from repro.serve import (
    AcceleratorStream,
    RecordPredictor,
    ServeConfig,
    resolve_engine,
    serve_stream,
    virtual_outcomes,
)
from repro.serve.stream import poisson_arrivals, stream_from_records
from repro.units import DVFS_SWITCH_TIME, MS
from tests.conftest import FlatEnergyModel, job
from tests.serve.conftest import DEADLINE, stream_records


def spiky_records(levels, n=400, seed=0):
    """Random light/heavy mix with precomputed predictions."""
    rng = np.random.default_rng(seed)
    light = int(levels.nominal.frequency * 2 * MS)
    heavy = int(levels.nominal.frequency * 8 * MS)
    records = []
    for i in range(n):
        cycles = heavy if rng.random() < 0.2 else light
        records.append(replace(job(i, cycles),
                               predicted_cycles=float(cycles),
                               slice_cycles=100))
    return records


def controller_for(kind, levels, boost=False):
    if kind == "predictive":
        return PredictiveController(levels, DVFS_SWITCH_TIME,
                                    boost=boost)
    if kind == "oracle":
        return OracleController(levels)
    if kind == "constant":
        return ConstantFrequencyController(levels)
    if kind == "table":
        light = float(levels.nominal.frequency * 2 * MS)
        return TableBasedController(levels, DVFS_SWITCH_TIME,
                                    table={0: light})
    raise AssertionError(kind)


def run_engine(levels, kind, engine, jobs, *, boost=False,
               energy_model=None, predictor="record", **config):
    controller = controller_for(kind, levels, boost=boost)
    model = energy_model if energy_model is not None \
        else FlatEnergyModel()
    config.setdefault("deadline", DEADLINE)
    stream = AcceleratorStream(
        "diff", controller, model, slice_energy_model=model,
        predictor=(RecordPredictor() if predictor == "record"
                   else predictor),
        config=ServeConfig(engine=engine, **config))
    result = serve_stream(stream, jobs)
    return stream, result


def assert_engines_identical(levels, kind, jobs, **kwargs):
    s_stream, s_result = run_engine(levels, kind, "scalar", jobs,
                                    **kwargs)
    v_stream, v_result = run_engine(levels, kind, "auto", jobs,
                                    **kwargs)
    assert s_stream.epoch_log == []
    assert virtual_outcomes(s_result) == virtual_outcomes(v_result)
    assert s_result.n_offered == v_result.n_offered
    return v_stream, v_result


@pytest.mark.parametrize("kind", ["predictive", "oracle", "constant",
                                  "table"])
@pytest.mark.parametrize("rate", [50.0, 200.0, 2000.0])
def test_vector_engine_bit_identical(asic_levels, kind, rate):
    """All four vectorizable controllers, under light load (pure
    epoch regime), moderate load, and heavy overload (mostly scalar
    fallback): identical canonical outcomes."""
    records = spiky_records(asic_levels, n=400, seed=3)
    jobs = stream_from_records(
        records, poisson_arrivals(rate, n_jobs=400, seed=11))
    stream, _ = assert_engines_identical(asic_levels, kind, jobs)
    if rate <= 200.0:
        # Light/moderate load must actually exercise the epoch path —
        # otherwise this test proves nothing about vectorization.
        assert stream.epoch_log


def test_vector_engine_boost_identical(asic_levels):
    records = spiky_records(asic_levels, n=300, seed=5)
    jobs = stream_from_records(
        records, poisson_arrivals(150.0, n_jobs=300, seed=7))
    stream, _ = assert_engines_identical(asic_levels, "predictive",
                                         jobs, boost=True)
    assert stream.epoch_log


def test_vector_engine_generic_energy_model(asic_levels):
    """The batched energy decomposition (per-level gathers + activity
    cache) against the scalar per-job calls, on a stock
    :class:`AsicEnergyModel` with block-level activity."""
    model = AsicEnergyModel(
        base_energy_per_cycle=1.3e-12,
        block_energy_per_cycle={"mul": 2.7e-12},
        leakage_power=0.8e-3)
    records = spiky_records(asic_levels, n=300, seed=9)
    jobs = stream_from_records(
        records, poisson_arrivals(120.0, n_jobs=300, seed=13))
    stream, _ = assert_engines_identical(
        asic_levels, "predictive", jobs, energy_model=model)
    assert stream.epoch_log


def test_missing_predictions_fall_back_identically(asic_levels):
    """Records with no precomputed prediction take the per-job
    fallback path inside epochs exactly as the scalar engine does."""
    records = spiky_records(asic_levels, n=200, seed=1)
    records = [replace(r, predicted_cycles=None) if i % 5 == 0 else r
               for i, r in enumerate(records)]
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=200, seed=2))
    stream, result = assert_engines_identical(asic_levels,
                                              "predictive", jobs)
    assert result.n_fallback > 0
    assert stream.epoch_log


def test_no_predictor_is_all_fallback_identically(asic_levels):
    records = spiky_records(asic_levels, n=100, seed=4)
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=100, seed=6))
    _, result = assert_engines_identical(asic_levels, "predictive",
                                         jobs, predictor=None)
    assert result.n_fallback == result.n_admitted


def test_reactive_controller_never_vectorizes(asic_levels):
    """A PID controller couples every decision to the last outcome:
    the epoch engine must refuse it outright and defer to scalar."""
    records = spiky_records(asic_levels, n=120, seed=8)
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=120, seed=9))

    def run(engine):
        controller = PidController(asic_levels, DVFS_SWITCH_TIME,
                                   gains=PidGains(0.4, 0.1, 0.05))
        model = FlatEnergyModel()
        stream = AcceleratorStream(
            "pid", controller, model, slice_energy_model=model,
            predictor=RecordPredictor(),
            config=ServeConfig(deadline=DEADLINE, engine=engine))
        return stream, serve_stream(stream, jobs)

    s_stream, s_result = run("scalar")
    v_stream, v_result = run("auto")
    assert v_stream.epoch_log == []
    assert virtual_outcomes(s_result) == virtual_outcomes(v_result)


def test_prediction_budget_disables_epochs(asic_levels, records):
    """A wall-clock prediction budget is per-measurement and cannot be
    replayed batch-equivalently: the engine must decline."""
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=len(records), seed=3))
    stream, _ = run_engine(asic_levels, "predictive", "auto", jobs,
                           prediction_budget=10.0)
    assert stream.epoch_log == []


def test_queue_depth_one_sheds_identically(asic_levels):
    """queue_depth=1 makes the job *after* an epoch sheddable — the
    reconstructed in-flight state must agree with scalar."""
    records = spiky_records(asic_levels, n=300, seed=12)
    jobs = stream_from_records(
        records, poisson_arrivals(400.0, n_jobs=300, seed=14))
    _, result = assert_engines_identical(asic_levels, "predictive",
                                         jobs, queue_depth=1)
    assert result.n_shed > 0


def test_epoch_log_conserves_and_checks_clean(asic_levels):
    """Epochs are disjoint, in order, cover only executed regime-A
    jobs, and pass the decision-epoch conservation checker."""
    records = spiky_records(asic_levels, n=500, seed=15)
    jobs = stream_from_records(
        records, poisson_arrivals(150.0, n_jobs=500, seed=16))
    stream, result = run_engine(asic_levels, "predictive", "auto",
                                jobs)
    assert stream.epoch_log
    assert check_epochs(result, stream.epoch_log) == []
    covered = sum(n for _, n in stream.epoch_log)
    assert covered <= result.n_offered
    # Epoch jobs all executed in micro-batches of one at their arrival.
    by_index = {o.index: o for o in result.outcomes}
    for first, count in stream.epoch_log:
        for index in range(first, first + count):
            outcome = by_index[index]
            assert outcome.batch_size == 1
            assert outcome.start == outcome.arrival


def test_epoch_decision_latency_amortized(asic_levels):
    """Within one epoch every job carries the same amortized
    ``decision_s`` — the epoch's wall time divided by its size — and
    it is a real measurement, not zero."""
    records = spiky_records(asic_levels, n=200, seed=17)
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=200, seed=18))
    stream, result = run_engine(asic_levels, "predictive", "auto",
                                jobs)
    assert stream.epoch_log
    by_index = {o.index: o for o in result.outcomes}
    for first, count in stream.epoch_log:
        latencies = {by_index[i].decision_s
                     for i in range(first, first + count)}
        assert len(latencies) == 1
        assert latencies.pop() > 0.0


def test_engine_env_var_selects_engine(asic_levels, records,
                                       monkeypatch):
    jobs = stream_from_records(
        records, poisson_arrivals(100.0, n_jobs=len(records), seed=1))
    monkeypatch.setenv("REPRO_SERVE_ENGINE", "scalar")
    stream, _ = run_engine(asic_levels, "predictive", None, jobs)
    assert resolve_engine(stream.config) == "scalar"
    assert stream.epoch_log == []
    monkeypatch.setenv("REPRO_SERVE_ENGINE", "vector")
    stream, _ = run_engine(asic_levels, "predictive", None, jobs)
    assert stream.epoch_log
    monkeypatch.setenv("REPRO_SERVE_ENGINE", "bogus")
    with pytest.raises(ValueError):
        run_engine(asic_levels, "predictive", None, jobs)


def test_bad_engine_config_rejected():
    with pytest.raises(ValueError):
        ServeConfig(engine="simd")


def test_strict_mode_covers_vector_engine(asic_levels, monkeypatch):
    """REPRO_CHECK=strict replays vector-engine results through the
    stream checker *and* the epoch checker without violations."""
    monkeypatch.setenv("REPRO_CHECK", "strict")
    records = stream_records(asic_levels, n=200)
    jobs = stream_from_records(
        records, poisson_arrivals(150.0, n_jobs=200, seed=21))
    stream, result = run_engine(asic_levels, "predictive", "auto",
                                jobs)
    assert stream.epoch_log
    assert result.n_offered == 200
