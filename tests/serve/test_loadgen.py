"""Load generation: open/closed loops and the latency report."""

import numpy as np
import pytest

from repro.serve import LoadReport, percentile, run_closed_loop, run_open_loop
from repro.units import MS

from .conftest import stream_records


def test_percentile_nearest_rank():
    values = [1.0, 2.0, 3.0, 4.0, 5.0]
    assert percentile(values, 0.0) == 1.0
    assert percentile(values, 50.0) == 3.0
    assert percentile(values, 100.0) == 5.0
    assert percentile([], 50.0) == 0.0
    assert percentile([7.0], 99.0) == 7.0
    with pytest.raises(ValueError, match="percentile"):
        percentile(values, 101.0)
    with pytest.raises(ValueError, match="percentile"):
        percentile(values, -0.5)


@pytest.mark.parametrize("values", [
    [7.0],                          # single element
    [1.0, 2.0],                     # even n: the old round() midpoint bug
    [1.0, 2.0, 3.0, 4.0],           # n=4, q=50 used to return sorted[2]
    [5.0, 5.0, 5.0, 5.0, 5.0],      # all ties
    [1.0, 1.0, 2.0, 2.0, 3.0],      # partial ties
    list(map(float, range(1, 101))),
    [0.1, 0.2, 0.2, 0.2, 0.9, 1.5, 1.5, 2.0],
])
@pytest.mark.parametrize("q", [0.0, 1.0, 25.0, 50.0, 75.0, 90.0,
                               99.0, 99.9, 100.0])
def test_percentile_matches_numpy_inverted_cdf(values, q):
    """Lock the nearest-rank definition to numpy's inverted CDF."""
    expected = float(np.percentile(values, q, method="inverted_cdf"))
    assert percentile(sorted(values), q) == expected


def test_percentile_always_returns_a_sample():
    """Nearest-rank never interpolates: the result is in the sample."""
    rng = np.random.default_rng(3)
    values = sorted(rng.normal(size=37).tolist())
    for q in np.linspace(0.0, 100.0, 41):
        assert percentile(values, float(q)) in values


def test_open_loop_report_is_consistent(make_stream, asic_levels):
    records = stream_records(asic_levels, n=10)
    report = run_open_loop(make_stream(), records, rate=40.0,
                           n_jobs=30, seed=4)
    assert report.mode == "open"
    assert report.offered_rate == 40.0
    assert report.n_offered == 30
    assert (report.n_completed + report.n_fallback + report.n_shed
            == report.n_offered)
    assert report.achieved_rate > 0.0
    assert report.wall_s > 0.0
    assert report.p50_decision_ms <= report.p99_decision_ms
    assert report.p99_decision_ms <= report.max_decision_ms


def test_open_loop_deterministic_in_seed(make_stream, asic_levels):
    records = stream_records(asic_levels, n=10)
    a = run_open_loop(make_stream(), records, rate=50.0, n_jobs=20,
                      seed=6)
    b = run_open_loop(make_stream(), records, rate=50.0, n_jobs=20,
                      seed=6)
    # Virtual-clock quantities are bit-identical; wall times are not.
    assert a.n_completed == b.n_completed
    assert a.n_shed == b.n_shed
    assert a.achieved_rate == b.achieved_rate


def test_closed_loop_self_paces(make_stream, asic_levels):
    """Closed-loop clients wait for service, so nothing ever sheds
    while concurrency stays below the queue depth."""
    records = stream_records(asic_levels, n=10)
    report = run_closed_loop(make_stream(queue_depth=8), records,
                             n_jobs=40, concurrency=3)
    assert report.mode == "closed"
    assert report.n_offered == 40
    assert report.n_shed == 0
    assert report.achieved_rate > 0.0
    # Offered rate is inferred from arrivals and tracks throughput.
    assert report.offered_rate == pytest.approx(report.achieved_rate,
                                                rel=0.25)


def test_closed_loop_validation(make_stream, asic_levels):
    records = stream_records(asic_levels, n=4)
    with pytest.raises(ValueError, match="n_jobs"):
        run_closed_loop(make_stream(), records, n_jobs=0)
    with pytest.raises(ValueError, match="concurrency"):
        run_closed_loop(make_stream(), records, n_jobs=4,
                        concurrency=0)


def test_report_round_trips_and_describes(make_stream, asic_levels):
    records = stream_records(asic_levels, n=6)
    report = run_open_loop(make_stream(), records, rate=30.0,
                           n_jobs=12, seed=1)
    payload = report.to_dict()
    assert payload["stream"] == "synthetic"
    assert LoadReport(**payload) == report
    text = report.describe()
    assert "synthetic/prediction [open]" in text
    assert "12 offered" in text
