"""The ``repro serve`` subcommand, invoked in-process."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def cjpeg(shared_bundle):
    """Prewarm the bundle the CLI will look up (scale 0.05)."""
    return shared_bundle("cjpeg", 0.05)


def test_serve_virtual_ok(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "25",
                 "--rate", "400", "--virtual", "--predictor", "record",
                 "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "cjpeg/prediction [open]: 25 offered" in out
    assert "serve: ok" in out


def test_serve_realtime_smoke(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "10",
                 "--rate", "200", "--predictor", "record"]) == 0
    assert "serve: ok" in capsys.readouterr().out


def test_serve_burst_and_scheme(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--duration", "0.5",
                 "--rate", "100", "--virtual", "--arrival", "burst",
                 "--scheme", "prediction_boost",
                 "--predictor", "record"]) == 0
    assert "cjpeg/prediction_boost" in capsys.readouterr().out


def test_serve_unknown_benchmark_exits_2(capsys):
    assert main(["serve", "--benchmark", "nope", "--jobs", "1"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_serve_unknown_scheme_exits_2(capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "1",
                 "--scheme", "warp"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_serve_slo_pass_and_exhausted_exit_codes(cjpeg, capsys):
    # A generous objective at a modest rate passes; an absurd one
    # (zero-tolerance decision latency) exhausts its budget -> exit 3.
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "20",
                 "--rate", "300", "--virtual", "--predictor", "record",
                 "--slo", "p99_decision_ms<1e4"]) == 0
    out = capsys.readouterr().out
    assert "slo p99_decision_ms<10000@99%" in out and "ok" in out
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "20",
                 "--rate", "300", "--virtual", "--predictor", "record",
                 "--slo", "p99_decision_ms<=0"]) == 3
    out = capsys.readouterr().out
    assert "EXHAUSTED" in out and "slo budget exhausted" in out


def test_serve_bad_slo_spec_exits_2(capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "1",
                 "--slo", "warp_speed<1"]) == 2
    assert "unknown SLO signal" in capsys.readouterr().err


def test_serve_slo_run_dir_artifacts_and_trace(cjpeg, tmp_path, capsys):
    run_dir = tmp_path / "run"
    trace = tmp_path / "trace.json"
    code = main(["serve", "--benchmark", "cjpeg", "--jobs", "20",
                 "--rate", "300", "--virtual", "--predictor", "record",
                 "--slo", "miss_rate<=100%", "--slo-window-ms", "20",
                 "--run-dir", str(run_dir)])
    assert code == 0
    capsys.readouterr()
    # The windowed registry persisted and is named by the manifest.
    manifest = json.loads((run_dir / "manifest.json").read_text())
    assert manifest["timeseries_file"] == "timeseries.json"
    timeseries = json.loads((run_dir / "timeseries.json").read_text())
    assert timeseries["window_s"] == pytest.approx(0.02)
    assert "serve.miss" in timeseries["series"]
    # Burn-rate accounting landed in the manifest.
    (row,) = manifest["slo"]
    assert row["spec"] == "miss_rate<=1@99%"
    assert row["windows"] > 0 and row["burn_rate"] == 0.0
    assert row["exhausted"] is False
    # The run dir renders with the windowed dashboard...
    assert main(["report", str(run_dir),
                 "--export-trace", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "serve (windows of 20 ms, virtual clock):" in out
    assert "slo miss_rate<=1@99%" in out
    # ...exports a loadable Chrome trace...
    from repro.obs.export import validate_chrome_trace
    payload = json.loads(trace.read_text())
    assert validate_chrome_trace(payload) == []
    assert any(e.get("ph") == "C" for e in payload["traceEvents"])
    # ...and passes the artifact audit (sjob conservation included).
    assert main(["check", str(run_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_serve_fleet_smoke(cjpeg, capsys):
    assert main(["serve", "--fleet", "2", "--benchmark", "cjpeg",
                 "--jobs", "40", "--rate", "400", "--virtual",
                 "--policy", "least_loaded",
                 "--tenants", "gold:rate=300:burst=20,free",
                 "--seed", "5"]) == 0
    out = capsys.readouterr().out
    assert "fleet[least_loaded] x2: 40 offered" in out
    assert "tenant gold:" in out and "tenant free:" in out
    assert "serve: ok" in out


def test_serve_fleet_counters_survive_workers(cjpeg, capsys):
    assert main(["serve", "--fleet", "2", "--benchmark", "cjpeg",
                 "--jobs", "30", "--rate", "400", "--virtual",
                 "--policy", "round_robin", "--workers", "2",
                 "--profile", "--seed", "5"]) == 0
    out = capsys.readouterr().out
    # Shard-side serve.* counters reached the parent registry through
    # the pool snapshot ship-back — nothing dropped.
    assert "fleet counters: offered=30" in out
    assert "dropped=0" in out


def test_serve_fleet_too_small_exits_2(capsys):
    assert main(["serve", "--fleet", "1", "--benchmark", "cjpeg",
                 "aes", "--jobs", "5"]) == 2
    assert "cannot cover" in capsys.readouterr().err


def test_serve_fleet_bad_tenants_exits_2(capsys):
    assert main(["serve", "--fleet", "2", "--benchmark", "cjpeg",
                 "--jobs", "5", "--tenants", "a,a"]) == 2
    assert "duplicate" in capsys.readouterr().err


def test_serve_fleet_bad_policy_exits_2(capsys):
    with pytest.raises(SystemExit):
        main(["serve", "--fleet", "2", "--benchmark", "cjpeg",
              "--jobs", "5", "--policy", "warp"])


def test_report_export_trace_requires_run_dir(capsys):
    assert main(["report", "--export-trace", "out.json"]) == 2
    assert "needs a captured run" in capsys.readouterr().err


def test_serve_run_dir_captures_metrics(cjpeg, tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "15",
                 "--rate", "300", "--virtual", "--predictor", "record",
                 "--run-dir", str(run_dir)]) == 0
    capsys.readouterr()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    counters = manifest["metrics"]["counters"]
    assert counters["serve.offered"] == 15
    assert (counters.get("serve.completed", 0)
            + counters.get("serve.fallback", 0)
            + counters.get("serve.shed", 0)) == 15
    assert "serve.decision_ms" in manifest["metrics"]["histograms"]
    # And the rendered report carries the serving digest.
    assert main(["report", str(run_dir)]) == 0
    assert "serve: 15 offered" in capsys.readouterr().out
