"""The ``repro serve`` subcommand, invoked in-process."""

import json

import pytest

from repro.cli import main


@pytest.fixture
def cjpeg(shared_bundle):
    """Prewarm the bundle the CLI will look up (scale 0.05)."""
    return shared_bundle("cjpeg", 0.05)


def test_serve_virtual_ok(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "25",
                 "--rate", "400", "--virtual", "--predictor", "record",
                 "--seed", "2"]) == 0
    out = capsys.readouterr().out
    assert "cjpeg/prediction [open]: 25 offered" in out
    assert "serve: ok" in out


def test_serve_realtime_smoke(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "10",
                 "--rate", "200", "--predictor", "record"]) == 0
    assert "serve: ok" in capsys.readouterr().out


def test_serve_burst_and_scheme(cjpeg, capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--duration", "0.5",
                 "--rate", "100", "--virtual", "--arrival", "burst",
                 "--scheme", "prediction_boost",
                 "--predictor", "record"]) == 0
    assert "cjpeg/prediction_boost" in capsys.readouterr().out


def test_serve_unknown_benchmark_exits_2(capsys):
    assert main(["serve", "--benchmark", "nope", "--jobs", "1"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err


def test_serve_unknown_scheme_exits_2(capsys):
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "1",
                 "--scheme", "warp"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_serve_run_dir_captures_metrics(cjpeg, tmp_path, capsys):
    run_dir = tmp_path / "run"
    assert main(["serve", "--benchmark", "cjpeg", "--jobs", "15",
                 "--rate", "300", "--virtual", "--predictor", "record",
                 "--run-dir", str(run_dir)]) == 0
    capsys.readouterr()
    manifest = json.loads((run_dir / "manifest.json").read_text())
    counters = manifest["metrics"]["counters"]
    assert counters["serve.offered"] == 15
    assert (counters.get("serve.completed", 0)
            + counters.get("serve.fallback", 0)
            + counters.get("serve.shed", 0)) == 15
    assert "serve.decision_ms" in manifest["metrics"]["histograms"]
    # And the rendered report carries the serving digest.
    assert main(["report", str(run_dir)]) == 0
    assert "serve: 15 offered" in capsys.readouterr().out
