"""Fleet dispatcher: routing policies, tenancy, and conservation.

The dispatcher routes on a projected ledger, so every test here can
interrogate :attr:`FleetDispatcher.routing_log` — the full audit trail
of candidates, backlogs, and choices — instead of reverse-engineering
decisions from shard outcomes.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.check import check_fleet
from repro.dvfs import PredictiveController
from repro.serve import (
    DEADLINE as POLICY_DEADLINE,
    ENERGY_AWARE,
    LEAST_LOADED,
    POLICIES,
    ROUND_ROBIN,
    FleetConfig,
    FleetDispatcher,
    FleetShed,
    RecordPredictor,
    ServeConfig,
    ShardSpec,
    TenantSpec,
    TokenBucket,
    mixed_stream_jobs,
    parse_tenants,
    poisson_arrivals,
    serve_fleet,
    virtual_outcomes,
)
from repro.units import DVFS_SWITCH_TIME
from tests.conftest import FlatEnergyModel

from .conftest import DEADLINE, stream_records


class PricierEnergyModel(FlatEnergyModel):
    """Same accelerator, ten times the joules — the energy-aware
    policy must avoid it.  Module-level so shard specs stay picklable.
    """

    def job_energy(self, activity, point, duration):
        return 10.0 * super().job_energy(activity, point, duration)


def make_spec(levels, name, benchmark, energy_model=None, **config):
    config.setdefault("deadline", DEADLINE)
    config.setdefault("queue_depth", 64)
    return ShardSpec(
        name=name, benchmark=benchmark,
        controller=PredictiveController(levels, DVFS_SWITCH_TIME),
        energy_model=energy_model or FlatEnergyModel(),
        slice_energy_model=FlatEnergyModel(),
        predictor=RecordPredictor(),
        config=ServeConfig(**config))


def make_pool(levels, benchmarks=("alpha", "beta"), per=2, **config):
    return [make_spec(levels, f"{bench}#{k}", bench, **config)
            for bench in benchmarks for k in range(per)]


def mixed_jobs(levels, benchmarks=("alpha", "beta"), rate=200.0,
               n_jobs=200, seed=3, tenants=("default",)):
    records = {b: stream_records(levels, n=20) for b in benchmarks}
    arrivals = poisson_arrivals(rate, n_jobs=n_jobs, seed=seed)
    return mixed_stream_jobs(records, arrivals, seed=seed,
                             tenants=tenants)


# -- specs, tenants, config ------------------------------------------


def test_tenant_spec_parses_cli_atoms():
    assert TenantSpec.parse("gold") == TenantSpec("gold")
    assert TenantSpec.parse("gold:rate=100:burst=8") == \
        TenantSpec("gold", rate=100.0, burst=8.0)
    assert TenantSpec.parse("a:burst=2") == TenantSpec("a", burst=2.0)
    with pytest.raises(ValueError, match="bad tenant spec"):
        TenantSpec.parse(":rate=1")
    with pytest.raises(ValueError, match="bad tenant spec field"):
        TenantSpec.parse("a:rate")
    with pytest.raises(ValueError, match="unknown tenant spec key"):
        TenantSpec.parse("a:speed=9")
    with pytest.raises(ValueError, match="burst"):
        TenantSpec("a", rate=5.0, burst=0.5)


def test_parse_tenants_rejects_empty_and_duplicates():
    specs = parse_tenants("gold:rate=10,free")
    assert [t.name for t in specs] == ["gold", "free"]
    assert specs[0].rate == 10.0
    with pytest.raises(ValueError, match="empty"):
        parse_tenants(" , ")
    with pytest.raises(ValueError, match="duplicate"):
        parse_tenants("a,b,a")


def test_token_bucket_enforces_rate_on_virtual_clock():
    bucket = TokenBucket(rate=2.0, burst=2.0)
    assert bucket.allow(0.0)
    assert bucket.allow(0.0)          # burst exhausted
    assert not bucket.allow(0.0)
    assert not bucket.allow(0.25)     # half a token refilled
    assert bucket.allow(0.75)         # 1.5 tokens by now
    unlimited = TokenBucket(rate=0.0, burst=1.0)
    assert all(unlimited.allow(0.0) for _ in range(100))


def test_fleet_config_validates():
    with pytest.raises(ValueError, match="unknown policy"):
        FleetConfig(policy="fastest")
    with pytest.raises(ValueError, match="global_depth"):
        FleetConfig(global_depth=0)
    with pytest.raises(ValueError, match="min_active"):
        FleetConfig(min_active=0)
    with pytest.raises(ValueError, match="scale_down_backlog"):
        FleetConfig(scale_up_backlog=2.0, scale_down_backlog=2.0)


def test_dispatcher_validates_stream(asic_levels):
    specs = make_pool(asic_levels, per=1)
    dispatcher = FleetDispatcher(specs)
    jobs = mixed_jobs(asic_levels, n_jobs=10)
    with pytest.raises(ValueError, match="sorted"):
        dispatcher.dispatch(list(reversed(jobs)))
    bad_tenant = dataclasses.replace(jobs[0], tenant="ghost")
    with pytest.raises(ValueError, match="unknown tenant"):
        FleetDispatcher(specs).route(bad_tenant)
    bad_bench = dataclasses.replace(jobs[0], benchmark="gamma")
    with pytest.raises(ValueError, match="no pool instance"):
        FleetDispatcher(specs).route(bad_bench)
    with pytest.raises(ValueError, match="at least one instance"):
        FleetDispatcher([])


# -- routing policies ------------------------------------------------


def test_round_robin_rotates_per_benchmark(asic_levels):
    specs = make_pool(asic_levels, per=3)
    dispatcher = FleetDispatcher(
        specs, FleetConfig(policy=ROUND_ROBIN))
    jobs = mixed_jobs(asic_levels, n_jobs=60)
    dispatcher.dispatch(jobs)
    assert not dispatcher.sheds
    # Each benchmark's jobs cycle its three instances in strict order.
    for bench in ("alpha", "beta"):
        pool = [i for i, s in enumerate(specs) if s.benchmark == bench]
        chosen = [dispatcher.assignments[j.index] for j in jobs
                  if j.benchmark == bench]
        expected = [pool[k % len(pool)] for k in range(len(chosen))]
        assert chosen == expected


def test_least_loaded_routes_to_min_backlog(asic_levels):
    dispatcher = FleetDispatcher(
        make_pool(asic_levels, per=4),
        FleetConfig(policy=LEAST_LOADED))
    dispatcher.dispatch(mixed_jobs(asic_levels, rate=2000.0,
                                   n_jobs=300))
    routed = [d for d in dispatcher.routing_log if d.chosen is not None]
    assert routed
    for decision in routed:
        chosen_backlog = decision.backlogs[
            decision.candidates.index(decision.chosen)]
        assert chosen_backlog == min(decision.backlogs)


@settings(max_examples=25, deadline=None)
@given(gaps=st.lists(st.floats(min_value=1e-5, max_value=0.02),
                     min_size=1, max_size=60),
       seed=st.integers(min_value=0, max_value=2**16))
def test_least_loaded_never_picks_a_busier_instance(
        asic_levels, gaps, seed):
    """Property: under least-loaded routing, no decision ever chooses
    an instance whose projected backlog strictly exceeds another
    candidate's."""
    records = {"alpha": stream_records(asic_levels, n=10)}
    arrivals, now = [], 0.0
    for gap in gaps:
        now += gap
        arrivals.append(now)
    jobs = mixed_stream_jobs(records, arrivals, seed=seed)
    dispatcher = FleetDispatcher(
        [make_spec(asic_levels, f"alpha#{k}", "alpha")
         for k in range(3)],
        FleetConfig(policy=LEAST_LOADED))
    dispatcher.dispatch(jobs)
    for decision in dispatcher.routing_log:
        if decision.chosen is None:
            continue
        chosen_backlog = decision.backlogs[
            decision.candidates.index(decision.chosen)]
        assert all(chosen_backlog <= b for b in decision.backlogs)


def test_energy_aware_avoids_the_pricey_instance(asic_levels):
    specs = [
        make_spec(asic_levels, "alpha#cheap", "alpha"),
        make_spec(asic_levels, "alpha#pricey", "alpha",
                  energy_model=PricierEnergyModel()),
    ]
    dispatcher = FleetDispatcher(
        specs, FleetConfig(policy=ENERGY_AWARE))
    jobs = mixed_jobs(asic_levels, benchmarks=("alpha",), n_jobs=40)
    dispatcher.dispatch(jobs)
    assert not dispatcher.sheds
    assert set(dispatcher.assignments.values()) == {0}


def test_deadline_policy_sheds_infeasible_jobs(asic_levels):
    # One slow instance, arrivals far faster than service: the ledger
    # saturates and late arrivals can no longer make their deadline,
    # so the dispatcher sheds them instead of burning the instance.
    dispatcher = FleetDispatcher(
        make_pool(asic_levels, benchmarks=("alpha",), per=1),
        FleetConfig(policy=POLICY_DEADLINE))
    jobs = mixed_jobs(asic_levels, benchmarks=("alpha",),
                      rate=5000.0, n_jobs=200)
    dispatcher.dispatch(jobs)
    assert dispatcher.sheds
    assert all(s.reason == "deadline" for s in dispatcher.sheds)
    assert (len(dispatcher.sheds)
            + sum(len(sub) for sub in dispatcher.routed)
            == dispatcher.n_offered == 200)


# -- admission: rate limits, global depth, elastic scaling -----------


def test_rate_limited_tenant_sheds_only_its_own_jobs(asic_levels):
    tenants = (TenantSpec("gold"),
               TenantSpec("free", rate=20.0, burst=1.0))
    dispatcher = FleetDispatcher(
        make_pool(asic_levels), FleetConfig(policy=LEAST_LOADED),
        tenants=tenants)
    jobs = mixed_jobs(asic_levels, rate=2000.0, n_jobs=300,
                      tenants=("gold", "free"))
    dispatcher.dispatch(jobs)
    assert dispatcher.sheds
    assert all(s.reason == "rate_limit" and s.tenant == "free"
               for s in dispatcher.sheds)


def test_global_depth_sheds_at_admission(asic_levels):
    dispatcher = FleetDispatcher(
        make_pool(asic_levels, per=1),
        FleetConfig(policy=LEAST_LOADED, global_depth=2))
    jobs = mixed_jobs(asic_levels, rate=5000.0, n_jobs=200)
    dispatcher.dispatch(jobs)
    reasons = {s.reason for s in dispatcher.sheds}
    assert reasons == {"admission"}
    assert len(dispatcher.sheds) > 0


def test_elastic_scaling_widens_and_narrows_the_pool(asic_levels):
    config = FleetConfig(policy=LEAST_LOADED, elastic=True,
                         scale_up_backlog=2.0,
                         scale_down_backlog=0.5, min_active=1)
    dispatcher = FleetDispatcher(
        make_pool(asic_levels, benchmarks=("alpha",), per=4), config)
    assert dispatcher.n_active() == 1
    burst = mixed_jobs(asic_levels, benchmarks=("alpha",),
                       rate=3000.0, n_jobs=120)
    dispatcher.dispatch(burst)
    assert dispatcher.n_active() > 1
    peak = dispatcher.n_active()
    # A long quiet tail lets the watermark retire idle instances.
    last = burst[-1].arrival
    trickle = mixed_stream_jobs(
        {"alpha": stream_records(asic_levels, n=10)},
        [last + 1.0 + i for i in range(8)], seed=9)
    for job in trickle:
        dispatcher.route(job)
    assert dispatcher.n_active() < peak
    assert dispatcher.n_active() >= config.min_active
    assert (len(dispatcher.sheds)
            + sum(len(sub) for sub in dispatcher.routed)
            == dispatcher.n_offered)


# -- end-to-end: serve_fleet, parallelism, conservation --------------


@pytest.mark.parametrize("policy", POLICIES)
def test_check_fleet_clean_for_every_policy(asic_levels, policy):
    specs = make_pool(asic_levels, queue_depth=8)
    jobs = mixed_jobs(asic_levels, rate=800.0, n_jobs=250,
                      tenants=("gold", "free"))
    tenants = (TenantSpec("gold"),
               TenantSpec("free", rate=200.0, burst=10.0))
    result = serve_fleet(specs, jobs,
                         FleetConfig(policy=policy, strict=False),
                         tenants=tenants, workers=1)
    assert result.n_offered == 250
    assert (result.n_completed + result.n_fallback + result.n_shed
            == result.n_offered)
    assert check_fleet(result) == []
    summary = result.tenant_summary()
    assert set(summary) <= {"gold", "free"}
    for row in summary.values():
        assert row["offered"] == (row["completed"] + row["fallback"]
                                  + row["shed"])
    assert f"fleet[{policy}]" in result.describe()


def test_parallel_run_is_bit_identical_to_serial(asic_levels):
    def run(workers):
        specs = make_pool(asic_levels, queue_depth=8)
        jobs = mixed_jobs(asic_levels, rate=600.0, n_jobs=200,
                          tenants=("gold", "free"))
        return serve_fleet(
            specs, jobs,
            FleetConfig(policy=ROUND_ROBIN, strict=False),
            tenants=(TenantSpec("gold"), TenantSpec("free")),
            workers=workers)

    serial = run(1)
    parallel = run(4)
    assert serial.assignments == parallel.assignments
    assert serial.sheds == parallel.sheds
    for a, b in zip(serial.shards, parallel.shards):
        assert virtual_outcomes(a) == virtual_outcomes(b)


def test_check_fleet_catches_tampering(asic_levels):
    specs = make_pool(asic_levels, queue_depth=8)
    jobs = mixed_jobs(asic_levels, rate=600.0, n_jobs=120)
    result = serve_fleet(specs, jobs, FleetConfig(strict=False),
                         workers=1)
    assert check_fleet(result) == []

    # A job the dispatcher never offered: indices no longer partition.
    lost = dataclasses.replace(result, n_offered=result.n_offered + 1)
    assert any(v.code == "fleet.conservation"
               for v in check_fleet(lost))

    # A shed with an unknown reason.
    bad_shed = dataclasses.replace(result, sheds=result.sheds + [
        FleetShed(index=result.n_offered, benchmark="alpha",
                  tenant="default", arrival=99.0, reason="gremlins")])
    assert any(v.code == "fleet.shed" for v in check_fleet(bad_shed))

    # A job tagged for one benchmark landing on another's instance.
    swapped = dataclasses.replace(
        result, benchmarks=dict(result.benchmarks))
    some_index = next(iter(result.assignments))
    swapped.benchmarks[some_index] = "gamma"
    assert any(v.code == "fleet.routing"
               for v in check_fleet(swapped))


def test_serve_fleet_strict_raises_on_violation(asic_levels,
                                                monkeypatch):
    from repro.check import InvariantError

    specs = make_pool(asic_levels, queue_depth=8)
    jobs = mixed_jobs(asic_levels, rate=400.0, n_jobs=60)
    # Clean run under strict: reaching the return *is* the assertion.
    result = serve_fleet(specs, jobs, FleetConfig(strict=True),
                         workers=1)
    assert result.n_offered == 60

    # Corrupt a shard post-hoc and replay the checker directly.
    broken = dataclasses.replace(result)
    broken.shards[0].outcomes.pop()
    violations = check_fleet(broken)
    assert violations
    with pytest.raises(InvariantError):
        raise InvariantError(violations)


# -- vectorized routing epochs and serial degrade --------------------


def _dispatch_pair(asic_levels, jobs, **config_kw):
    """Dispatch the same jobs through scalar and auto dispatchers."""
    logs = {}
    for engine in ("scalar", "auto"):
        pool = make_pool(asic_levels)
        dispatcher = FleetDispatcher(
            pool, config=FleetConfig(engine=engine, **config_kw))
        dispatcher.dispatch(jobs)
        logs[engine] = dispatcher
    return logs["scalar"], logs["auto"]


def test_round_robin_epoch_matches_scalar_routing(asic_levels):
    """The vectorized routing epoch reproduces the scalar dispatcher's
    full audit trail — candidates, backlogs, choices — exactly."""
    from repro.obs import session

    jobs = mixed_jobs(asic_levels, rate=1500.0, n_jobs=400)
    with session(command="epoch routing") as obs:
        scalar, fast = _dispatch_pair(asic_levels, jobs,
                                      policy=ROUND_ROBIN)
        assert obs.metrics.counters.get("serve.fleet.epoch_jobs", 0) > 0
    assert fast.routing_log == scalar.routing_log
    assert fast.assignments == scalar.assignments
    assert fast.sheds == scalar.sheds
    assert fast.n_offered == scalar.n_offered
    assert fast._rr == scalar._rr
    # Reconstructed ledgers must carry the same projected clocks.
    for a, b in zip(scalar._ledgers, fast._ledgers):
        assert a.clock == b.clock


@pytest.mark.parametrize("policy", POLICIES)
def test_fleet_engines_bit_identical_for_every_policy(asic_levels,
                                                      policy):
    """serve_fleet under scalar vs auto engines: identical routing and
    identical shard outcomes in canonical form, for all policies (only
    round_robin vectorizes; the rest must pass through untouched)."""
    jobs = mixed_jobs(asic_levels, rate=800.0, n_jobs=300)

    def run(engine):
        return serve_fleet(
            make_pool(asic_levels), jobs,
            config=FleetConfig(policy=policy, engine=engine,
                               strict=False),
            workers=1)

    scalar, fast = run("scalar"), run("auto")
    assert fast.assignments == scalar.assignments
    assert fast.sheds == scalar.sheds
    for a, b in zip(scalar.shards, fast.shards):
        assert virtual_outcomes(a) == virtual_outcomes(b)
    assert check_fleet(fast) == []


def test_epoch_declines_on_rate_limits_elastic_and_depth(asic_levels):
    """Any coupled admission feature keeps the scalar path — and the
    results stay identical by construction."""
    jobs = mixed_jobs(asic_levels, rate=1000.0, n_jobs=150,
                      tenants=("limited",))
    pool = make_pool(asic_levels)
    # Rate-limited tenant: epoch ineligible.
    dispatcher = FleetDispatcher(
        pool, config=FleetConfig(policy=ROUND_ROBIN, engine="auto"),
        tenants=[TenantSpec("limited", rate=100.0, burst=4.0)])
    assert not dispatcher._epoch_eligible(jobs)
    # Elastic scaling: epoch ineligible.
    dispatcher = FleetDispatcher(
        pool, config=FleetConfig(policy=ROUND_ROBIN, engine="auto",
                                 elastic=True))
    jobs_default = mixed_jobs(asic_levels, rate=1000.0, n_jobs=50)
    assert not dispatcher._epoch_eligible(jobs_default)
    # Pool at or above the global depth: epoch ineligible.
    dispatcher = FleetDispatcher(
        pool, config=FleetConfig(policy=ROUND_ROBIN, engine="auto",
                                 global_depth=len(pool)))
    assert not dispatcher._epoch_eligible(jobs_default)
    # Non-round-robin policy: epoch ineligible.
    dispatcher = FleetDispatcher(
        pool, config=FleetConfig(policy=LEAST_LOADED, engine="auto"))
    assert not dispatcher._epoch_eligible(jobs_default)


def test_epoch_declines_unknown_benchmark_with_scalar_diagnostic(
        asic_levels):
    """A mid-stream job naming an unserved benchmark must raise the
    scalar path's ValueError, with the offered count at the failing
    job — not a vectorized IndexError."""
    jobs = mixed_jobs(asic_levels, rate=500.0, n_jobs=60)
    bad = dataclasses.replace(jobs[30], benchmark="gamma")
    jobs = jobs[:30] + [bad] + jobs[31:]
    dispatcher = FleetDispatcher(
        make_pool(asic_levels),
        config=FleetConfig(policy=ROUND_ROBIN, engine="auto"))
    with pytest.raises(ValueError, match="gamma"):
        dispatcher.dispatch(jobs)
    assert dispatcher.n_offered == 31


def test_serial_degrade_on_low_core_hosts(asic_levels, monkeypatch):
    """Process fan-out auto-degrades to serial when the host cannot
    give each shard two cores — counted, and still bit-identical."""
    from repro.obs import session
    from repro.serve import fleet as fleet_mod

    jobs = mixed_jobs(asic_levels, rate=400.0, n_jobs=120)

    def run(workers, cores):
        monkeypatch.setattr(fleet_mod, "usable_cores", lambda: cores)
        with session(command="degrade") as obs:
            result = serve_fleet(
                make_pool(asic_levels), jobs,
                config=FleetConfig(policy=ROUND_ROBIN, strict=False),
                workers=workers)
            degraded = obs.metrics.counters.get(
                "serve.fleet.serial_degrade", 0.0)
        return result, degraded

    serial, degraded_serial = run(workers=1, cores=1)
    # workers=1 never degrades (nothing to degrade).
    assert degraded_serial == 0.0
    parallel, degraded_parallel = run(workers=4, cores=2)
    # 4 shards on 2 cores: degrade kicks in exactly once.
    assert degraded_parallel == 1.0
    for a, b in zip(serial.shards, parallel.shards):
        assert virtual_outcomes(a) == virtual_outcomes(b)
    # With ample cores the fan-out is left alone.
    _, degraded_wide = run(workers=4, cores=64)
    assert degraded_wide == 0.0
