"""The controller state machine: admission, batching, degradation."""

from dataclasses import replace

import pytest

from repro.dvfs import ConstantFrequencyController
from repro.serve import (
    FALLBACK,
    SHED,
    AcceleratorStream,
    ServeConfig,
    SlicePredictor,
    build_stream_jobs,
    serve_stream,
    serve_streams,
    stream_from_records,
)
from repro.units import MS
from tests.conftest import FlatEnergyModel

from .conftest import DEADLINE, stream_records, violations_of


def spaced(records, gap):
    """One job every ``gap`` seconds, in record order."""
    return stream_from_records(records,
                               [i * gap for i in range(len(records))])


def test_underload_completes_everything(make_stream, records):
    stream = make_stream()
    result = serve_stream(stream, spaced(records, 20 * MS))
    assert result.n_offered == len(records)
    assert result.n_completed == len(records)
    assert result.n_fallback == result.n_shed == 0
    assert violations_of(stream, result) == []


def test_timeline_chains_on_virtual_clock(make_stream, records):
    stream = make_stream()
    result = serve_stream(stream, spaced(records, 1 * MS))
    prev_finish = 0.0
    for o in result.outcomes:
        assert o.release == o.arrival
        assert o.start == pytest.approx(max(prev_finish, o.release))
        prev_finish = o.finish
    assert violations_of(stream, result) == []


def test_overload_sheds_but_conserves(make_stream, asic_levels):
    records = stream_records(asic_levels, n=60)
    stream = make_stream(queue_depth=3)
    result = serve_stream(stream, spaced(records, 0.1 * MS))
    assert result.n_shed > 0
    assert (result.n_completed + result.n_fallback + result.n_shed
            == result.n_offered)
    for o in result.outcomes:
        if o.status == SHED:
            assert o.energy == o.t_exec == o.frequency == 0.0
    assert violations_of(stream, result) == []


def test_zero_budget_falls_back_everything(make_stream, records):
    stream = make_stream(prediction_budget=0.0)
    result = serve_stream(stream, spaced(records, 20 * MS))
    assert result.n_fallback == result.n_offered
    fastest = stream.levels.fastest()
    for o in result.outcomes:
        assert o.status == FALLBACK
        assert o.t_slice == 0.0
        assert o.frequency == fastest.frequency
        assert not o.boosted
    assert violations_of(stream, result) == []


def test_unpredictable_record_falls_back(make_stream, records):
    """A record with no precomputed prediction degrades, not crashes."""
    broken = [replace(r, predicted_cycles=None) if i == 2 else r
              for i, r in enumerate(records)]
    stream = make_stream()
    result = serve_stream(stream, spaced(broken, 20 * MS))
    assert result.outcomes[2].status == FALLBACK
    assert result.n_fallback == 1
    assert result.n_completed == len(records) - 1
    assert violations_of(stream, result) == []


def test_missing_predictor_falls_back(make_stream, records):
    stream = make_stream(predictor=None)
    result = serve_stream(stream, spaced(records, 20 * MS))
    assert result.n_fallback == result.n_offered
    assert violations_of(stream, result) == []


def test_baseline_scheme_never_falls_back(asic_levels):
    """A sliceless controller needs no predictor and no fallback."""
    records = stream_records(asic_levels, n=12)
    stream = AcceleratorStream(
        "base", ConstantFrequencyController(asic_levels),
        FlatEnergyModel(), predictor=None,
        config=ServeConfig(deadline=DEADLINE))
    result = serve_stream(stream, spaced(records, 20 * MS))
    assert result.n_completed == result.n_offered
    assert result.n_fallback == 0
    assert violations_of(stream, result) == []


def test_micro_batches_form_under_pressure(make_stream, asic_levels):
    records = stream_records(asic_levels, n=40)
    stream = make_stream(batch_max=4, queue_depth=64)
    result = serve_stream(stream, spaced(records, 0.5 * MS))
    sizes = [o.batch_size for o in result.executed]
    assert max(sizes) > 1          # batching actually happened
    assert max(sizes) <= 4         # and respected the cap
    assert violations_of(stream, result) == []


def test_serve_streams_returns_in_input_order(make_stream, records):
    a, b = make_stream(), make_stream()
    jobs_a = spaced(records, 20 * MS)
    jobs_b = spaced(records[:10], 15 * MS)
    results = serve_streams([(a, jobs_a), (b, jobs_b)])
    assert results[0].n_offered == len(jobs_a)
    assert results[1].n_offered == len(jobs_b)
    assert violations_of(a, results[0]) == []
    assert violations_of(b, results[1]) == []


def test_serve_streams_rejects_unsorted_arrivals(make_stream, records):
    jobs = spaced(records[:3], 10 * MS)
    with pytest.raises(ValueError, match="sorted"):
        serve_streams([(make_stream(), [jobs[1], jobs[0], jobs[2]])])


def test_strict_mode_passes_clean_stream(make_stream, records):
    stream = make_stream(strict=True)
    result = serve_stream(stream, spaced(records, 20 * MS))
    assert result.n_completed == result.n_offered


def test_realtime_smoke(make_stream, records):
    """Realtime pacing keeps the same accounting as virtual mode."""
    stream = make_stream()
    jobs = spaced(records[:12], 5 * MS)
    result = serve_stream(stream, jobs, realtime=True)
    assert result.n_completed == result.n_offered == 12
    assert result.wall_s > 0.0
    # Virtual accounting identical regardless of the driving mode.
    virtual = serve_stream(make_stream(), jobs)
    assert [o.status for o in result.outcomes] == \
        [o.status for o in virtual.outcomes]
    assert result.total_energy == pytest.approx(virtual.total_energy)
    assert violations_of(stream, result) == []


def test_serve_config_validation():
    with pytest.raises(ValueError, match="deadline"):
        ServeConfig(deadline=0.0)
    with pytest.raises(ValueError, match="queue_depth"):
        ServeConfig(queue_depth=0)
    with pytest.raises(ValueError, match="batch_max"):
        ServeConfig(batch_max=0)


def test_result_rates(make_stream, asic_levels):
    records = stream_records(asic_levels, n=30)
    stream = make_stream(queue_depth=2)
    result = serve_stream(stream, spaced(records, 0.1 * MS))
    assert 0.0 < result.shed_rate < 1.0
    assert result.makespan > 0.0
    latencies = result.decision_latencies()
    assert len(latencies) == result.n_admitted
    assert latencies == sorted(latencies)


def test_online_slice_matches_offline_prediction(shared_bundle):
    """The streaming SlicePredictor reproduces the offline flow's
    prediction for every job — same slice, same feature vector, same
    linear model, just a persistent simulation."""
    from repro.experiments import make_controller, tech_context

    bundle = shared_bundle("cjpeg", 0.05)
    ctx = tech_context(bundle, tech="asic")
    stream = AcceleratorStream(
        "cjpeg", make_controller(ctx, "prediction"),
        ctx.energy_model, ctx.slice_energy_model,
        predictor=SlicePredictor(bundle.package),
        config=ServeConfig(deadline=ctx.config.deadline,
                           t_switch=ctx.config.t_switch))
    n = min(6, len(bundle.test_records))
    jobs = build_stream_jobs(bundle, [i * 50 * MS for i in range(n)],
                             with_inputs=True)
    result = serve_stream(stream, jobs)
    assert result.n_completed == n
    for outcome, record in zip(result.outcomes, bundle.test_records):
        assert outcome.job.predicted_cycles == pytest.approx(
            record.predicted_cycles, rel=1e-9)
        assert outcome.job.slice_cycles == record.slice_cycles
    assert violations_of(stream, result) == []


def test_batched_slice_prediction_matches_per_job(shared_bundle):
    """Under the batch backend a serving micro-batch is predicted in
    one lockstep array step — same predictions, statuses and invariant
    cleanliness as the per-job stepjit path, with per-job fallback for
    a job that cannot be predicted (no encoded input)."""
    from repro.experiments import make_controller, tech_context
    from repro.rtl import set_default_backend

    bundle = shared_bundle("cjpeg", 0.05)
    ctx = tech_context(bundle, tech="asic")
    n = min(6, len(bundle.test_records))

    def run(backend):
        try:
            set_default_backend(backend)
            stream = AcceleratorStream(
                "cjpeg", make_controller(ctx, "prediction"),
                ctx.energy_model, ctx.slice_energy_model,
                predictor=SlicePredictor(bundle.package),
                config=ServeConfig(deadline=ctx.config.deadline,
                                   t_switch=ctx.config.t_switch))
            jobs = build_stream_jobs(bundle, [0.0] * n,
                                     with_inputs=True)
            jobs[2] = replace(jobs[2], job_input=None)
            return serve_stream(stream, jobs), stream
        finally:
            set_default_backend(None)

    base, _ = run("stepjit")
    batched, stream = run("batch")
    assert stream.predictor.batch_capable
    assert stream.predictor._batch_sim is not None  # batch path ran
    assert [o.status for o in batched.outcomes] == \
        [o.status for o in base.outcomes]
    assert base.outcomes[2].status == FALLBACK
    for a, b in zip(base.outcomes, batched.outcomes):
        assert b.job.predicted_cycles == pytest.approx(
            a.job.predicted_cycles, rel=1e-12)
        assert b.job.slice_cycles == a.job.slice_cycles
    assert violations_of(stream, batched) == []


class _RescanBacklogStream(AcceleratorStream):
    """Reference admission: recount in-flight work by rescanning every
    executed outcome per arrival — the O(n^2) definition the
    incremental counter in ``AcceleratorStream.backlog`` must match
    shed-for-shed."""

    def backlog(self, arrival):
        executing = sum(1 for o in self.outcomes
                        if o.executed and o.finish > arrival)
        return len(self._queue) + executing


def test_incremental_backlog_matches_rescan_on_10k_jobs(asic_levels):
    """Regression: the amortized-O(1) in-flight counter makes exactly
    the shed decisions a full outcome rescan would, over a 10k-job
    stream spanning under-, over-, and bursty load."""
    from repro.dvfs import PredictiveController
    from repro.serve import (
        RecordPredictor,
        burst_arrivals,
        poisson_arrivals,
    )
    from repro.units import DVFS_SWITCH_TIME

    records = stream_records(asic_levels, n=50)
    arrivals = sorted(
        poisson_arrivals(400.0, n_jobs=7_000, seed=11)
        + burst_arrivals(400.0, duration=10.0, seed=12))
    arrivals = arrivals[:10_000]
    assert len(arrivals) == 10_000

    def run(stream_cls):
        controller = PredictiveController(asic_levels,
                                          DVFS_SWITCH_TIME)
        stream = stream_cls(
            "synthetic", controller, FlatEnergyModel(),
            slice_energy_model=FlatEnergyModel(),
            predictor=RecordPredictor(),
            config=ServeConfig(deadline=DEADLINE, queue_depth=8))
        return serve_stream(stream,
                            stream_from_records(records, arrivals))

    fast = run(AcceleratorStream)
    reference = run(_RescanBacklogStream)
    assert fast.n_offered == reference.n_offered == 10_000
    assert fast.n_shed == reference.n_shed > 0
    assert [o.status for o in fast.outcomes] == \
        [o.status for o in reference.outcomes]
