"""Arrival processes and stream construction."""

import pytest

from repro.serve import (
    StreamJob,
    burst_arrivals,
    poisson_arrivals,
    stream_from_records,
    trace_replay,
)
from tests.conftest import job


def test_poisson_deterministic_in_seed():
    a = poisson_arrivals(50.0, duration=2.0, seed=7)
    b = poisson_arrivals(50.0, duration=2.0, seed=7)
    c = poisson_arrivals(50.0, duration=2.0, seed=8)
    assert a == b
    assert a != c


def test_poisson_duration_bound():
    times = poisson_arrivals(100.0, duration=1.5, seed=0)
    assert all(0.0 < t < 1.5 for t in times)
    assert times == sorted(times)
    # Law of large numbers, loosely: ~150 arrivals expected.
    assert 100 < len(times) < 210


def test_poisson_n_jobs_bound():
    times = poisson_arrivals(100.0, n_jobs=37, seed=3)
    assert len(times) == 37
    assert times == sorted(times)


def test_poisson_mean_rate():
    times = poisson_arrivals(200.0, n_jobs=4000, seed=1)
    mean_gap = times[-1] / len(times)
    assert mean_gap == pytest.approx(1.0 / 200.0, rel=0.1)


def test_poisson_argument_validation():
    with pytest.raises(ValueError, match="exactly one"):
        poisson_arrivals(10.0, duration=1.0, n_jobs=5)
    with pytest.raises(ValueError, match="exactly one"):
        poisson_arrivals(10.0)
    with pytest.raises(ValueError, match="rate"):
        poisson_arrivals(0.0, duration=1.0)


def test_burst_preserves_average_rate():
    times = burst_arrivals(200.0, duration=20.0, seed=2)
    assert len(times) / 20.0 == pytest.approx(200.0, rel=0.15)
    assert times == sorted(times)
    assert all(0.0 <= t < 20.0 for t in times)


def test_burst_has_silent_phases():
    """Every arrival lands inside the on-phase of its period."""
    period, duty = 1.0, 0.3
    times = burst_arrivals(100.0, duration=10.0, seed=5,
                           period=period, duty=duty)
    assert times  # a 10 s window at 100/s is never empty
    for t in times:
        assert (t % period) <= period * duty + 1e-9


def test_burst_argument_validation():
    with pytest.raises(ValueError, match="duty"):
        burst_arrivals(10.0, duration=1.0, duty=0.0)
    with pytest.raises(ValueError, match="period"):
        burst_arrivals(10.0, duration=1.0, period=-1.0)


def test_trace_replay_sorts_and_compresses():
    assert trace_replay([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]
    assert trace_replay([2.0, 4.0], speed=2.0) == [1.0, 2.0]
    with pytest.raises(ValueError, match="speed"):
        trace_replay([1.0], speed=0.0)
    with pytest.raises(ValueError, match="negative"):
        trace_replay([-1.0, 2.0])


def test_stream_job_rejects_negative_arrival():
    with pytest.raises(ValueError, match="negative"):
        StreamJob(index=0, record=job(0, 100), arrival=-0.5)


def test_stream_from_records_cycles_and_reindexes():
    records = [job(0, 100), job(1, 200)]
    jobs = stream_from_records(records, [0.3, 0.1, 0.2, 0.4, 0.5])
    assert [j.index for j in jobs] == [0, 1, 2, 3, 4]
    assert [j.record.index for j in jobs] == [0, 1, 2, 3, 4]
    # Arrivals sorted, records cycled in order.
    assert [j.arrival for j in jobs] == [0.1, 0.2, 0.3, 0.4, 0.5]
    assert [j.record.actual_cycles for j in jobs] == \
        [100, 200, 100, 200, 100]


def test_stream_from_records_validation():
    with pytest.raises(ValueError, match="zero records"):
        stream_from_records([], [0.1])
    with pytest.raises(ValueError, match="1:1"):
        stream_from_records([job(0, 100)], [0.1], inputs=[None, None])
