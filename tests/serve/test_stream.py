"""Arrival processes and stream construction."""

import pytest

from repro.serve import (
    StreamJob,
    burst_arrivals,
    poisson_arrivals,
    stream_from_records,
    trace_replay,
)
from tests.conftest import job


def test_poisson_deterministic_in_seed():
    a = poisson_arrivals(50.0, duration=2.0, seed=7)
    b = poisson_arrivals(50.0, duration=2.0, seed=7)
    c = poisson_arrivals(50.0, duration=2.0, seed=8)
    assert a == b
    assert a != c


def test_poisson_duration_bound():
    times = poisson_arrivals(100.0, duration=1.5, seed=0)
    assert all(0.0 < t < 1.5 for t in times)
    assert times == sorted(times)
    # Law of large numbers, loosely: ~150 arrivals expected.
    assert 100 < len(times) < 210


def test_poisson_n_jobs_bound():
    times = poisson_arrivals(100.0, n_jobs=37, seed=3)
    assert len(times) == 37
    assert times == sorted(times)


def test_poisson_mean_rate():
    times = poisson_arrivals(200.0, n_jobs=4000, seed=1)
    mean_gap = times[-1] / len(times)
    assert mean_gap == pytest.approx(1.0 / 200.0, rel=0.1)


def test_poisson_argument_validation():
    with pytest.raises(ValueError, match="exactly one"):
        poisson_arrivals(10.0, duration=1.0, n_jobs=5)
    with pytest.raises(ValueError, match="exactly one"):
        poisson_arrivals(10.0)
    with pytest.raises(ValueError, match="rate"):
        poisson_arrivals(0.0, duration=1.0)


def test_burst_preserves_average_rate():
    times = burst_arrivals(200.0, duration=20.0, seed=2)
    assert len(times) / 20.0 == pytest.approx(200.0, rel=0.15)
    assert times == sorted(times)
    assert all(0.0 <= t < 20.0 for t in times)


def test_burst_has_silent_phases():
    """Every arrival lands inside the on-phase of its period."""
    period, duty = 1.0, 0.3
    times = burst_arrivals(100.0, duration=10.0, seed=5,
                           period=period, duty=duty)
    assert times  # a 10 s window at 100/s is never empty
    for t in times:
        assert (t % period) <= period * duty + 1e-9


def test_burst_argument_validation():
    with pytest.raises(ValueError, match="duty"):
        burst_arrivals(10.0, duration=1.0, duty=0.0)
    with pytest.raises(ValueError, match="period"):
        burst_arrivals(10.0, duration=1.0, period=-1.0)


def test_trace_replay_sorts_and_compresses():
    assert trace_replay([3.0, 1.0, 2.0]) == [1.0, 2.0, 3.0]
    assert trace_replay([2.0, 4.0], speed=2.0) == [1.0, 2.0]
    with pytest.raises(ValueError, match="speed"):
        trace_replay([1.0], speed=0.0)
    with pytest.raises(ValueError, match="negative"):
        trace_replay([-1.0, 2.0])


def test_stream_job_rejects_negative_arrival():
    with pytest.raises(ValueError, match="negative"):
        StreamJob(index=0, record=job(0, 100), arrival=-0.5)


def test_stream_from_records_cycles_and_reindexes():
    records = [job(0, 100), job(1, 200)]
    jobs = stream_from_records(records, [0.3, 0.1, 0.2, 0.4, 0.5])
    assert [j.index for j in jobs] == [0, 1, 2, 3, 4]
    assert [j.record.index for j in jobs] == [0, 1, 2, 3, 4]
    # Arrivals sorted, records cycled in order.
    assert [j.arrival for j in jobs] == [0.1, 0.2, 0.3, 0.4, 0.5]
    assert [j.record.actual_cycles for j in jobs] == \
        [100, 200, 100, 200, 100]


def test_stream_from_records_validation():
    with pytest.raises(ValueError, match="zero records"):
        stream_from_records([], [0.1])
    with pytest.raises(ValueError, match="1:1"):
        stream_from_records([job(0, 100)], [0.1], inputs=[None, None])


# -- variable-frame-rate arrivals ------------------------------------

def test_vfr_deterministic_and_sorted():
    from repro.serve import vfr_arrivals

    a = vfr_arrivals(60.0, n_jobs=200, seed=4)
    b = vfr_arrivals(60.0, n_jobs=200, seed=4)
    c = vfr_arrivals(60.0, n_jobs=200, seed=5)
    assert a == b
    assert a != c
    assert len(a) == 200
    assert a == sorted(a)
    assert a[0] > 0.0


def test_vfr_gaps_bounded_by_floor_and_ceil():
    from repro.serve import vfr_arrivals

    rate, floor, ceil = 100.0, 0.5, 2.0
    times = vfr_arrivals(rate, n_jobs=500, seed=9,
                         jitter=0.4, floor=floor, ceil=ceil)
    gaps = [b - a for a, b in zip([0.0] + times[:-1], times)]
    for gap in gaps:
        assert 1.0 / (rate * ceil) - 1e-12 <= gap \
            <= 1.0 / (rate * floor) + 1e-12


def test_vfr_gaps_are_correlated_not_poisson():
    """Consecutive gaps come from a random walk: the lag-1
    autocorrelation is clearly positive (Poisson gaps have none)."""
    import numpy as np

    from repro.serve import vfr_arrivals

    times = vfr_arrivals(60.0, n_jobs=2000, seed=11, jitter=0.2)
    gaps = np.diff(np.array([0.0] + times))
    x, y = gaps[:-1] - gaps.mean(), gaps[1:] - gaps.mean()
    rho = float((x * y).mean() / gaps.var())
    assert rho > 0.5


def test_vfr_argument_validation():
    from repro.serve import vfr_arrivals

    with pytest.raises(ValueError, match="rate"):
        vfr_arrivals(0.0, n_jobs=5)
    with pytest.raises(ValueError, match="n_jobs"):
        vfr_arrivals(10.0, n_jobs=0)
    with pytest.raises(ValueError, match="jitter"):
        vfr_arrivals(10.0, n_jobs=5, jitter=-0.1)
    with pytest.raises(ValueError, match="floor"):
        vfr_arrivals(10.0, n_jobs=5, floor=1.5)


# -- adversarial size ordering ---------------------------------------

def _sized_records(sizes):
    return [job(i, c) for i, c in enumerate(sizes)]


def test_adversarial_front_loaded_descends():
    from repro.serve import adversarial_order

    records = _sized_records([30, 10, 50, 20, 40])
    out = adversarial_order(records, "front_loaded", seed=0)
    assert [r.actual_cycles for r in out] == [50, 40, 30, 20, 10]
    # A permutation: same records, same indices, just reordered.
    assert sorted(r.index for r in out) == [0, 1, 2, 3, 4]


def test_adversarial_ramp_ascends():
    from repro.serve import adversarial_order

    records = _sized_records([30, 10, 50, 20, 40])
    out = adversarial_order(records, "ramp", seed=0)
    assert [r.actual_cycles for r in out] == [10, 20, 30, 40, 50]


def test_adversarial_alternating_interleaves():
    from repro.serve import adversarial_order

    records = _sized_records([30, 10, 50, 20, 40])
    out = adversarial_order(records, "alternating", seed=0)
    assert [r.actual_cycles for r in out] == [50, 10, 40, 20, 30]


def test_adversarial_tie_break_is_seeded():
    from repro.serve import adversarial_order

    records = _sized_records([7, 7, 7, 7, 7, 7, 7, 7])
    a = [r.index for r in adversarial_order(records, "ramp", seed=1)]
    b = [r.index for r in adversarial_order(records, "ramp", seed=1)]
    assert a == b
    seeds = {tuple(r.index for r in
                   adversarial_order(records, "ramp", seed=s))
             for s in range(8)}
    assert len(seeds) > 1  # ties genuinely shuffle across seeds


def test_adversarial_argument_validation():
    from repro.serve import adversarial_order

    with pytest.raises(ValueError, match="unknown adversarial mode"):
        adversarial_order(_sized_records([1]), "chaotic")
    with pytest.raises(ValueError, match="zero records"):
        adversarial_order([], "ramp")


# -- mixed-deadline service classes ----------------------------------

def test_split_by_deadline_partitions_every_record():
    from repro.serve import DeadlineClass, split_by_deadline

    records = _sized_records(range(1, 101))
    classes = (DeadlineClass("tight", 0.002, weight=1.0),
               DeadlineClass("loose", 0.016, weight=3.0))
    parts = split_by_deadline(records, classes, seed=6)
    assert set(parts) == {"tight", "loose"}
    merged = sorted(r.index for part in parts.values() for r in part)
    assert merged == list(range(100))  # indices are 0..99  # a partition, nothing doubled
    # Weights bias the draw ~3:1.
    assert len(parts["loose"]) > len(parts["tight"])


def test_split_by_deadline_never_leaves_a_class_empty():
    from repro.serve import DeadlineClass, split_by_deadline

    records = _sized_records([5, 6])
    classes = (DeadlineClass("a", 0.01, weight=1000.0),
               DeadlineClass("b", 0.01, weight=0.001))
    parts = split_by_deadline(records, classes, seed=0)
    assert len(parts["a"]) == 1 and len(parts["b"]) == 1


def test_split_by_deadline_is_deterministic():
    from repro.serve import DeadlineClass, split_by_deadline

    records = _sized_records(range(1, 41))
    classes = (DeadlineClass("a", 0.01), DeadlineClass("b", 0.02))
    a = split_by_deadline(records, classes, seed=3)
    b = split_by_deadline(records, classes, seed=3)
    assert {k: [r.index for r in v] for k, v in a.items()} \
        == {k: [r.index for r in v] for k, v in b.items()}


def test_split_by_deadline_argument_validation():
    from repro.serve import DeadlineClass, split_by_deadline

    with pytest.raises(ValueError, match="deadline must be positive"):
        DeadlineClass("x", 0.0)
    with pytest.raises(ValueError, match="weight must be positive"):
        DeadlineClass("x", 0.01, weight=0.0)
    with pytest.raises(ValueError, match="at least one"):
        split_by_deadline(_sized_records([1]), ())
    with pytest.raises(ValueError, match="unique"):
        split_by_deadline(_sized_records([1, 2]),
                          (DeadlineClass("a", 0.1),
                           DeadlineClass("a", 0.2)))
    with pytest.raises(ValueError, match="cannot cover"):
        split_by_deadline(_sized_records([1]),
                          (DeadlineClass("a", 0.1),
                           DeadlineClass("b", 0.2)))
