"""Shared fixtures for the serving-runtime tests.

Everything here runs on synthetic job records and the shared flat
energy model, so the per-job accounting stays under a microscope and
the suite stays fast.  The bundle-backed tests (online slice
prediction, the CLI) request the session ``shared_bundle`` factory
from the top-level conftest instead.
"""

from dataclasses import replace

import pytest

from repro.check import check_stream
from repro.dvfs import PredictiveController
from repro.serve import AcceleratorStream, RecordPredictor, ServeConfig
from repro.units import DVFS_SWITCH_TIME, MS
from tests.conftest import FlatEnergyModel, job

DEADLINE = 10 * MS

#: Sentinel distinguishing "use the default predictor" from an
#: explicit ``predictor=None`` (a slice scheme with no predictor at
#: all, which must degrade to fallback).
_DEFAULT = object()


def stream_records(levels, n=20, heavy_every=4):
    """Synthetic records: light jobs with a heavy one every
    ``heavy_every`` — spiky enough that the controller changes levels.
    """
    light = int(levels.nominal.frequency * 2 * MS)
    heavy = int(levels.nominal.frequency * 8 * MS)
    records = []
    for i in range(n):
        is_heavy = heavy_every and i % heavy_every == heavy_every - 1
        cycles = heavy if is_heavy else light
        records.append(replace(job(i, cycles),
                               predicted_cycles=float(cycles),
                               slice_cycles=100))
    return records


def violations_of(stream, result):
    """Run the invariant checker with the stream's own models."""
    return check_stream(
        result,
        energy_model=stream.energy_model,
        slice_energy_model=stream.slice_energy_model,
        levels=stream.levels,
        t_switch=stream.config.t_switch,
        uses_slice=stream.controller.uses_slice,
        charge_overheads=stream.controller.charge_overheads,
    )


@pytest.fixture
def records(asic_levels):
    return stream_records(asic_levels)


@pytest.fixture
def make_stream(asic_levels):
    """Factory for a predictive stream over the shared level table."""

    def factory(predictor=_DEFAULT, boost=False, **config):
        config.setdefault("deadline", DEADLINE)
        controller = PredictiveController(asic_levels, DVFS_SWITCH_TIME,
                                          boost=boost)
        return AcceleratorStream(
            "synthetic", controller, FlatEnergyModel(),
            slice_energy_model=FlatEnergyModel(),
            predictor=(RecordPredictor() if predictor is _DEFAULT
                       else predictor),
            config=ServeConfig(**config))

    return factory
