"""Smoke tests: every example script runs end to end.

Examples are user-facing documentation; a stale one is worse than no
example.  Each runs in a subprocess with a small workload scale.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def run_example(name: str, timeout: int = 420) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
        env={"PATH": "/usr/bin:/bin", "REPRO_SCALE": "0.1",
             "PYTHONPATH": str(EXAMPLES.parent / "src")},
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "offline flow for cjpeg" in out
    assert "features selected by Lasso" in out
    assert "online prediction" in out


def test_video_player():
    out = run_example("video_player.py")
    assert "baseline" in out and "prediction" in out
    assert "per-frame timeline" in out
    assert "saved" in out


def test_custom_accelerator():
    out = run_example("custom_accelerator.py")
    assert "never-seen accelerator" in out
    assert "prediction error over" in out
    assert "predictive DVFS:" in out


def test_software_predictor():
    out = run_example("software_predictor.py")
    assert "sliced C program" in out
    assert "hw slice pred" in out


def test_soc_pipeline():
    out = run_example("soc_pipeline.py")
    assert "peak power" in out
    assert "chip-level:" in out
    assert "trace: prediction" in out
