"""Workload generator tests: determinism, ranges, statistics."""

import numpy as np
import pytest

from repro.workloads import (
    ALL_BENCHMARKS,
    fig2_clips,
    generate_clip,
    generate_images,
    generate_pieces,
    generate_raw_images,
    generate_trajectory,
    workload_for,
)
from repro.workloads.rng import (
    clipped_normal_int,
    log_uniform_int,
    stream,
)
from repro.workloads.video import MAX_COEFFS


def test_stream_is_deterministic_and_label_separated():
    a1 = stream(1, "x").integers(0, 1000, 10)
    a2 = stream(1, "x").integers(0, 1000, 10)
    b = stream(1, "y").integers(0, 1000, 10)
    assert a1.tolist() == a2.tolist()
    assert a1.tolist() != b.tolist()


def test_log_uniform_bounds():
    rng = stream(7, "t")
    values = [log_uniform_int(rng, 10, 1000) for _ in range(500)]
    assert min(values) >= 10 and max(values) <= 1000
    # Log-uniform: the geometric middle is hit roughly evenly.
    below = sum(1 for v in values if v < 100)
    assert 150 < below < 350


def test_clipped_normal_int_respects_bounds():
    rng = stream(3, "c")
    values = [clipped_normal_int(rng, 50, 100, 0, 60) for _ in range(200)]
    assert min(values) >= 0 and max(values) <= 60


def test_clip_generation_deterministic():
    spec = fig2_clips(10)[0]
    a = generate_clip(spec)
    b = generate_clip(spec)
    assert a == b


def test_clip_frame_structure():
    spec = fig2_clips(30)[1]
    frames = generate_clip(spec)
    assert len(frames) == 30
    assert frames[0].is_scene_cut  # frame 0 is always an I-frame
    for frame in frames:
        assert len(frame.mbs) == spec.mb_count
        for mb in frame.mbs:
            assert 0 <= mb.mb_type <= 2
            assert 0 <= mb.n_coeffs <= MAX_COEFFS
            assert 0 <= mb.mv_frac <= 2
            if mb.mb_type != 1:
                assert mb.mv_frac == 0  # only inter MBs carry vectors


def test_clips_have_distinct_complexity():
    """coastguard is heavier than news (the Fig 2 separation)."""
    clips = {s.name: generate_clip(s) for s in fig2_clips(40)}

    def mean_coeffs(frames):
        return np.mean([
            mb.n_coeffs for f in frames for mb in f.mbs
        ])

    assert mean_coeffs(clips["coastguard"]) > mean_coeffs(clips["news"]) + 10


def test_scene_cut_frames_are_intra_heavy():
    spec = fig2_clips(60)[2]  # news has cuts
    frames = generate_clip(spec)
    cuts = [f for f in frames if f.is_scene_cut]
    assert cuts
    for frame in cuts:
        assert all(mb.mb_type == 0 for mb in frame.mbs)


def test_images_sizes_and_fields():
    images = generate_images(50, seed=9, min_dim_blocks=10,
                             max_dim_blocks=40)
    assert len(images) == 50
    for img in images:
        assert 10 <= img.width_blocks <= 40
        assert 10 <= img.height_blocks <= 40
        assert len(img.strips) == img.height_blocks
        for strip in img.strips:
            assert strip.n_blocks == img.width_blocks
            assert 0 <= strip.nnz_total <= 63 * strip.n_blocks
    sizes = {img.size_class for img in images}
    assert len(sizes) > 1  # various sizes => several table classes


def test_images_autocorrelated_with_jumps():
    images = generate_images(300, seed=5)
    logs = np.log([img.n_blocks for img in images])
    rho = np.corrcoef(logs[:-1], logs[1:])[0, 1]
    assert 0.3 < rho < 0.97  # correlated but not constant


def test_raw_images_bounds():
    images = generate_raw_images(40, seed=2)
    for img in images:
        assert 256 <= img.rows <= 784
        assert 256 <= img.cols <= 784
        assert img.kernel in (0, 1, 2)


def test_trajectory_shapes_and_dynamics():
    steps = generate_trajectory(120, seed=4)
    assert len(steps) == 120
    totals = np.array([s.total_pairs for s in steps])
    assert (totals > 0).all()
    # Slowly varying: consecutive steps correlate strongly.
    rho = np.corrcoef(totals[:-1], totals[1:])[0, 1]
    assert rho > 0.8
    # But the range is wide (cluster merges / dispersal).
    assert totals.max() > 2.5 * totals.min()


def test_pieces_bounds_and_modes():
    pieces = generate_pieces(100, seed=8, min_bytes=1000, max_bytes=100000)
    for piece in pieces:
        assert 1000 <= piece.n_bytes <= 100000
        assert piece.mode in (0, 1)
    assert any(p.key256 for p in pieces)
    assert any(not p.key256 for p in pieces)


def test_piece_size_sessions_correlate():
    pieces = generate_pieces(300, seed=3, min_bytes=10_000,
                             max_bytes=10_000_000)
    logs = np.log([p.n_bytes for p in pieces])
    rho = np.corrcoef(logs[:-1], logs[1:])[0, 1]
    assert rho > 0.3


def test_workload_registry_covers_all_benchmarks():
    for name in ALL_BENCHMARKS:
        workload = workload_for(name, scale=0.1)
        assert workload.train and workload.test
        assert workload.train_description
    with pytest.raises(KeyError, match="unknown benchmark"):
        workload_for("npu")


def test_workload_scale_controls_counts():
    small = workload_for("cjpeg", scale=0.1)
    large = workload_for("cjpeg", scale=0.5)
    assert len(large.test) > len(small.test)


def test_train_and_test_sets_differ():
    workload = workload_for("aes", scale=0.3)
    train_sizes = [p.n_bytes for p in workload.train]
    test_sizes = [p.n_bytes for p in workload.test]
    assert train_sizes != test_sizes
