"""Workload serialization round-trip tests."""

import json

import pytest

from repro.workloads import ALL_BENCHMARKS, workload_for
from repro.workloads.trace_io import (
    FORMAT_VERSION,
    load_workload,
    save_workload,
)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
def test_round_trip_every_benchmark(name, tmp_path):
    items = workload_for(name, scale=0.1).test[:5]
    path = tmp_path / f"{name}.json"
    save_workload(items, path)
    reloaded = load_workload(path)
    assert reloaded == list(items)


def test_round_trip_preserves_job_encoding(tmp_path):
    """The reloaded items encode to bit-identical jobs."""
    from repro.accelerators import get_design

    design = get_design("h264")
    items = workload_for("h264", scale=0.1).test[:3]
    path = tmp_path / "trace.json"
    save_workload(items, path)
    for original, reloaded in zip(items, load_workload(path)):
        a = design.encode_job(original)
        b = design.encode_job(reloaded)
        assert a.inputs == b.inputs
        assert {k: list(v) for k, v in a.memories.items()} == \
            {k: list(v) for k, v in b.memories.items()}


def test_rejects_unknown_version(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"version": 999, "n_items": 0,
                                "items": []}))
    with pytest.raises(ValueError, match="version"):
        load_workload(path)


def test_rejects_unknown_kind(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "version": FORMAT_VERSION, "n_items": 1,
        "items": [{"kind": "Alien", "data": {}}],
    }))
    with pytest.raises(ValueError, match="unknown workload item"):
        load_workload(path)


def test_rejects_inconsistent_count(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({
        "version": FORMAT_VERSION, "n_items": 5, "items": [],
    }))
    with pytest.raises(ValueError, match="inconsistent"):
        load_workload(path)


def test_rejects_unserializable_items(tmp_path):
    with pytest.raises(TypeError, match="cannot serialize"):
        save_workload([object()], tmp_path / "x.json")
