"""Workload characterization tests."""

import pytest

from repro.workloads import ALL_BENCHMARKS, workload_for
from repro.workloads.characterize import (
    characterize,
    profile_table,
    size_proxy,
)


def test_size_proxy_covers_every_item_type():
    for name in ALL_BENCHMARKS:
        items = workload_for(name, scale=0.1).test[:3]
        for item in items:
            assert size_proxy(item) > 0


def test_size_proxy_rejects_unknown():
    with pytest.raises(TypeError, match="no size proxy"):
        size_proxy(object())


def test_characterize_requires_two_jobs():
    items = workload_for("aes", scale=0.1).test[:1]
    with pytest.raises(ValueError, match="two jobs"):
        characterize(items)


def test_md_is_trackable_video_is_spiky():
    """The paper's workload taxonomy, measured: md drifts slowly
    (reactive control almost works); h264 carries scene-cut spikes."""
    md = characterize(workload_for("md", scale=0.5).test)
    h264 = characterize(workload_for("h264", scale=0.5).test)
    assert md.lag1_autocorr > 0.85
    assert h264.spike_rate > 0.0
    assert md.lag1_autocorr > h264.lag1_autocorr


def test_all_benchmarks_have_wide_spread():
    """Table 4's premise: every benchmark varies a lot job to job."""
    for name in ALL_BENCHMARKS:
        profile = characterize(workload_for(name, scale=0.3).test)
        assert profile.cv > 0.10, name


def test_profile_table_renders():
    profiles = {
        name: characterize(workload_for(name, scale=0.15).test)
        for name in ("md", "aes")
    }
    text = profile_table(profiles)
    assert "md" in text and "aes" in text
    assert "reactive?" in text


def test_constant_series_edge_case():
    from repro.workloads.datastream import DataPiece

    items = [DataPiece(index=i, n_bytes=1000) for i in range(10)]
    profile = characterize(items)
    assert profile.cv == 0.0
    assert profile.lag1_autocorr == 1.0
    assert profile.spike_rate == 0.0
    assert profile.reactive_friendly
