"""Cross-validation and learning-curve tests."""

import pytest

from repro.model import TrainingConfig
from repro.model.validation import cross_validate, learning_curve
from tests.model.test_training import synthetic_matrix


def test_cross_validate_folds_cover_everything():
    matrix, _ = synthetic_matrix(seed=11, n=100, noise=50.0)
    results = cross_validate(matrix, TrainingConfig(gamma=1e-4), k=5)
    assert len(results) == 5
    assert sum(r.n_test for r in results) == matrix.n_jobs
    for r in results:
        assert r.n_train + r.n_test == matrix.n_jobs
        assert r.mean_abs_pct < 5.0  # low-noise synthetic data


def test_cross_validate_validation():
    matrix, _ = synthetic_matrix(seed=11, n=12)
    with pytest.raises(ValueError, match="folds"):
        cross_validate(matrix, k=1)
    with pytest.raises(ValueError, match="too few"):
        cross_validate(matrix, k=10)


def test_cross_validate_detects_generalizable_model():
    matrix, _ = synthetic_matrix(seed=12, n=120, noise=0.0)
    results = cross_validate(matrix, TrainingConfig(gamma=1e-4), k=4)
    # Deterministic data: every fold is near-exact.
    assert max(r.mean_abs_pct for r in results) < 0.5


def test_learning_curve_improves_with_data():
    matrix, _ = synthetic_matrix(seed=13, n=200, noise=200.0)
    points = learning_curve(matrix, TrainingConfig(gamma=1e-4),
                            sizes=(0.1, 0.5, 1.0))
    assert [p.n_train for p in points] == sorted(
        p.n_train for p in points)
    # More data never makes things dramatically worse; the largest
    # training set should be at least as good as the smallest.
    assert points[-1].mean_abs_pct <= points[0].mean_abs_pct * 1.5


def test_learning_curve_on_toy_accelerator_features():
    """End-to-end: CV works on a real recorded feature matrix."""
    from repro.flow import FlowConfig, generate_predictor
    from tests.conftest import ToyDesign, toy_workload

    design = ToyDesign()
    package = generate_predictor(design, toy_workload(40, seed=5),
                                 FlowConfig(gamma=1e-4))
    results = cross_validate(package.train_matrix,
                             TrainingConfig(gamma=1e-4), k=4)
    assert max(r.mean_abs_pct for r in results) < 2.0
