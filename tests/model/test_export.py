"""Predictor export tests: JSON round-trip and C header generation."""

import json

import numpy as np
import pytest

from repro.model import LinearPredictor
from repro.model.export import (
    load_predictor,
    predictor_from_json,
    predictor_to_json,
    save_predictor,
    to_c_header,
)
from repro.model.quantize import FixedPointFormat, quantize_predictor


def make_predictor():
    return LinearPredictor(
        ("stc:ctrl:A->B", "aivs:c_work"),
        np.array([811.25, 1.5]),
        intercept=28675.0,
    )


def test_json_round_trip():
    original = make_predictor()
    reloaded = predictor_from_json(predictor_to_json(original))
    assert reloaded.feature_names == original.feature_names
    np.testing.assert_array_equal(reloaded.coeffs, original.coeffs)
    assert reloaded.intercept == original.intercept
    x = np.array([7.0, 1234.0])
    assert reloaded.predict_one(x) == original.predict_one(x)


def test_json_version_check():
    payload = json.loads(predictor_to_json(make_predictor()))
    payload["version"] = 99
    with pytest.raises(ValueError, match="format"):
        predictor_from_json(json.dumps(payload))


def test_file_round_trip(tmp_path):
    original = make_predictor()
    path = tmp_path / "model.json"
    save_predictor(original, path)
    reloaded = load_predictor(path)
    assert reloaded.as_dict() == original.as_dict()


def test_c_header_structure():
    quantized = quantize_predictor(make_predictor(),
                                   FixedPointFormat(fraction_bits=8))
    header = to_c_header(quantized)
    assert header.startswith("/* Generated execution-time")
    assert "#define EXEC_TIME_MODEL_N_FEATURES 2" in header
    assert "#define EXEC_TIME_MODEL_FRACTION_BITS 8" in header
    assert "exec_time_model_coeffs[2]" in header
    assert "acc >> EXEC_TIME_MODEL_FRACTION_BITS" in header
    # Feature names documented, sanitized to identifiers.
    assert "STC_CTRL_A__B" in header
    assert header.rstrip().endswith("#endif /* EXEC_TIME_MODEL_H */")


def test_c_header_arithmetic_matches_python():
    """Evaluate the generated C arithmetic (transliterated) and compare
    with the quantized predictor."""
    predictor = make_predictor()
    quantized = quantize_predictor(predictor,
                                   FixedPointFormat(fraction_bits=4))
    features = [9, 40_000]
    acc = quantized.raw_intercept + sum(
        f * c for f, c in zip(features, quantized.raw_coeffs))
    c_result = acc >> 4  # the header's final shift
    assert c_result == int(quantized.predict_one(features))


def test_header_for_real_trained_model():
    from repro.flow import FlowConfig, generate_predictor
    from tests.conftest import ToyDesign, toy_workload

    package = generate_predictor(ToyDesign(), toy_workload(30, seed=9),
                                 FlowConfig(gamma=1e-4))
    quantized = quantize_predictor(package.predictor)
    header = to_c_header(quantized, symbol="toy_model")
    assert f"toy_model_coeffs[{len(package.feature_set)}]" in header
