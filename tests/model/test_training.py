"""Training pipeline, Lasso path and metrics tests."""

import numpy as np
import pytest

from repro.analysis import FeatureMatrix, FeatureSet, FeatureSpec
from repro.model import (
    BoxStats,
    LinearPredictor,
    PredictionReport,
    TrainingConfig,
    fit_predictor,
    lasso_path,
    percent_errors,
    select_gamma,
    worst_case_error_pct,
)


def synthetic_matrix(seed=0, n=200, relevant=3, junk=5, noise=0.0):
    """A feature matrix shaped like real accelerator features: counts
    and value sums with positive coefficients (cycles per unit)."""
    rng = np.random.default_rng(seed)
    p = relevant + junk
    specs = [FeatureSpec("ic", f"c{i}") for i in range(p)]
    x = rng.integers(0, 50, size=(n, p)).astype(float)
    coeffs = np.zeros(p)
    coeffs[:relevant] = rng.uniform(50, 500, size=relevant)
    cycles = x @ coeffs + 2000.0 + noise * rng.normal(size=n)
    cycles = np.maximum(cycles, 1.0)
    return FeatureMatrix(FeatureSet(specs), x, cycles), coeffs


def test_fit_recovers_noiseless_model():
    matrix, coeffs = synthetic_matrix()
    model = fit_predictor(matrix, TrainingConfig(alpha=8.0, gamma=1e-4))
    pred = model.predictor.predict(matrix.x)
    assert worst_case_error_pct(pred, matrix.cycles) < 0.5


def test_fit_selects_only_relevant_features():
    matrix, coeffs = synthetic_matrix()
    model = fit_predictor(matrix, TrainingConfig(alpha=8.0, gamma=1e-3))
    selected = set(model.predictor.selected_features)
    assert selected <= {"ic:c0", "ic:c1", "ic:c2"}
    assert len(selected) == 3


def test_refit_removes_shrinkage_bias():
    matrix, _ = synthetic_matrix(noise=0.0)
    biased = fit_predictor(
        matrix, TrainingConfig(alpha=1.0, gamma=5e-3, refit=False))
    refit = fit_predictor(
        matrix, TrainingConfig(alpha=1.0, gamma=5e-3, refit=True))
    err_biased = worst_case_error_pct(
        biased.predictor.predict(matrix.x), matrix.cycles)
    err_refit = worst_case_error_pct(
        refit.predictor.predict(matrix.x), matrix.cycles)
    assert err_refit < err_biased


def test_asymmetric_training_under_predicts_rarely():
    matrix, _ = synthetic_matrix(seed=3, noise=800.0)
    model = fit_predictor(matrix, TrainingConfig(alpha=30.0, gamma=1e-4))
    pred = model.predictor.predict(matrix.x)
    report = PredictionReport.from_predictions(pred, matrix.cycles)
    assert report.under_rate < 0.15
    # A symmetric fit under-predicts about half the time.
    sym = fit_predictor(matrix, TrainingConfig(alpha=1.0, gamma=1e-4))
    sym_report = PredictionReport.from_predictions(
        sym.predictor.predict(matrix.x), matrix.cycles)
    assert sym_report.under_rate > 0.3


def test_fit_requires_two_jobs():
    matrix, _ = synthetic_matrix(n=10)
    tiny = FeatureMatrix(matrix.feature_set, matrix.x[:1], matrix.cycles[:1])
    with pytest.raises(ValueError, match="two training jobs"):
        fit_predictor(tiny)


def test_config_validation():
    with pytest.raises(ValueError, match="alpha"):
        TrainingConfig(alpha=0.0)
    with pytest.raises(ValueError, match="gamma"):
        TrainingConfig(gamma=-1.0)


def test_predictor_round_trip_raw_space():
    """Coefficients are usable on raw (unstandardized) features."""
    matrix, _ = synthetic_matrix(seed=5)
    model = fit_predictor(matrix, TrainingConfig(alpha=4.0, gamma=1e-4))
    x0 = matrix.x[0]
    manual = float(x0 @ model.predictor.coeffs) + model.predictor.intercept
    assert model.predictor.predict_one(x0) == pytest.approx(manual)


def test_lasso_path_is_monotone_in_sparsity():
    matrix, _ = synthetic_matrix(seed=7, noise=100.0)
    points = lasso_path(matrix, alpha=4.0,
                        gammas=[1e-6, 1e-4, 1e-2])
    counts = [p.n_features for p in points]
    assert counts[0] >= counts[-1]


def test_select_gamma_prefers_sparse_models():
    matrix, _ = synthetic_matrix(seed=8, noise=100.0)
    gamma, points = select_gamma(matrix, alpha=4.0)
    chosen = next(p for p in points if p.gamma == gamma)
    best_err = min(p.val_error for p in points)
    assert chosen.val_error <= best_err + 0.5
    assert chosen.n_features <= min(
        p.n_features for p in points if p.val_error <= best_err + 0.5)


def test_percent_errors_sign_convention():
    errors = percent_errors(np.array([110.0, 90.0]), np.array([100.0, 100.0]))
    assert errors.tolist() == [10.0, -10.0]


def test_box_stats_known_distribution():
    data = list(range(1, 101)) + [1000.0]  # one clear outlier
    box = BoxStats.from_samples(data)
    assert box.q1 <= box.median <= box.q3
    assert box.outliers == (1000.0,)
    assert box.whisker_high <= 100.0


def test_box_stats_rejects_empty():
    with pytest.raises(ValueError):
        BoxStats.from_samples([])


def test_prediction_report_fields():
    actual = np.array([100.0, 100.0, 100.0, 100.0])
    predicted = np.array([105.0, 95.0, 100.0, 120.0])
    report = PredictionReport.from_predictions(predicted, actual)
    assert report.n_jobs == 4
    assert report.max_over_pct == pytest.approx(20.0)
    assert report.max_under_pct == pytest.approx(5.0)
    assert report.under_rate == pytest.approx(0.25)


def test_linear_predictor_shapes():
    with pytest.raises(ValueError):
        LinearPredictor(("a", "b"), np.zeros(3), 0.0)
    pred = LinearPredictor(("a", "b"), np.array([1.0, 0.0]), 5.0)
    assert pred.n_terms == 1
    assert pred.selected_features == ["a"]
    assert pred.as_dict() == {"a": 1.0}
    assert pred.restricted().coeffs.tolist() == [1.0, 0.0]
