"""Fixed-point quantization tests."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.model import LinearPredictor
from repro.model.quantize import (
    FixedPointFormat,
    QuantizedPredictor,
    quantization_sweep,
    quantize_predictor,
)


def make_predictor():
    return LinearPredictor(
        ("a", "b", "c"),
        np.array([12.625, -0.375, 0.0]),
        intercept=1000.5,
    )


def test_format_validation():
    with pytest.raises(ValueError):
        FixedPointFormat(integer_bits=0)
    with pytest.raises(ValueError):
        FixedPointFormat(fraction_bits=-1)


def test_exact_representation_roundtrip():
    fmt = FixedPointFormat(fraction_bits=3)  # eighths
    assert fmt.dequantize(fmt.quantize(12.625)) == 12.625
    assert fmt.dequantize(fmt.quantize(-0.375)) == -0.375


def test_quantize_truncates_fine_fractions():
    fmt = FixedPointFormat(fraction_bits=1)  # halves only
    assert fmt.dequantize(fmt.quantize(0.375)) == 0.5


def test_saturation():
    fmt = FixedPointFormat(integer_bits=4, fraction_bits=0)
    assert fmt.quantize(10_000) == 15
    assert fmt.quantize(-10_000) == -16


def test_quantized_predictor_matches_float_when_exact():
    predictor = make_predictor()
    q = quantize_predictor(predictor, FixedPointFormat(fraction_bits=3))
    x = np.array([100.0, 200.0, 5.0])
    assert q.predict_one(x) == pytest.approx(predictor.predict_one(x))
    assert q.n_terms == 2
    assert q.coefficient_error(predictor) == 0.0


def test_predict_batch_shapes():
    q = quantize_predictor(make_predictor())
    x = np.array([[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]])
    out = q.predict(x)
    assert out.shape == (2,)


def test_integer_arithmetic_only():
    """The MAC accumulator stays integral until the final shift."""
    predictor = make_predictor()
    fmt = FixedPointFormat(fraction_bits=4)
    q = quantize_predictor(predictor, fmt)
    x = [3, 7, 11]
    acc = q.raw_intercept + sum(int(v) * c
                                for v, c in zip(x, q.raw_coeffs))
    assert q.predict_one(x) == acc / fmt.scale


@given(st.integers(0, 12))
def test_more_fraction_bits_never_hurt(bits):
    predictor = make_predictor()
    x = np.array([[50.0, 60.0, 70.0], [1.0, 2.0, 3.0]])
    coarse = quantize_predictor(predictor,
                                FixedPointFormat(fraction_bits=bits))
    fine = quantize_predictor(predictor,
                              FixedPointFormat(fraction_bits=bits + 4))
    ref = predictor.predict(x)
    err_coarse = np.max(np.abs(coarse.predict(x) - ref))
    err_fine = np.max(np.abs(fine.predict(x) - ref))
    assert err_fine <= err_coarse + 1e-9


def test_quantization_sweep_monotone():
    predictor = make_predictor()
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1000, size=(50, 3)).astype(float)
    points = quantization_sweep(predictor, x)
    errors = [e for _, e in points]
    assert errors == sorted(errors, reverse=True)
    assert errors[-1] < 0.01  # 12 fraction bits: essentially exact
