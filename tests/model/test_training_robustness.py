"""Training robustness: degenerate inputs must not break the flow."""

import numpy as np
import pytest

from repro.analysis import FeatureMatrix, FeatureSet, FeatureSpec
from repro.model import TrainingConfig, fit_predictor


def matrix_from(x, cycles):
    x = np.asarray(x, dtype=float)
    specs = [FeatureSpec("ic", f"c{i}") for i in range(x.shape[1])]
    return FeatureMatrix(FeatureSet(specs), x,
                         np.asarray(cycles, dtype=float))


def test_constant_features_fall_back_to_intercept():
    """All-constant features carry no signal; the model should learn
    the mean (standardization must not divide by zero)."""
    x = np.ones((30, 3)) * 7
    cycles = np.full(30, 1234.0)
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=1e-3))
    pred = model.predictor.predict(x)
    np.testing.assert_allclose(pred, 1234.0, rtol=1e-6)


def test_constant_target():
    rng = np.random.default_rng(1)
    x = rng.integers(0, 50, size=(40, 4)).astype(float)
    cycles = np.full(40, 5000.0)
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=1e-3))
    pred = model.predictor.predict(x)
    np.testing.assert_allclose(pred, 5000.0, rtol=1e-4)


def test_single_feature():
    rng = np.random.default_rng(2)
    x = rng.integers(1, 100, size=(50, 1)).astype(float)
    cycles = 37.0 * x[:, 0] + 100.0
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=1e-4))
    assert model.predictor.coeffs[0] == pytest.approx(37.0, rel=1e-3)


def test_duplicate_collinear_features():
    """Perfectly collinear columns must not blow up the solver; the
    combined effect must be learned even if the split is arbitrary."""
    rng = np.random.default_rng(3)
    base = rng.integers(0, 50, size=(60, 1)).astype(float)
    x = np.hstack([base, base, base])
    cycles = 10.0 * base[:, 0] + 500.0
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=1e-3))
    pred = model.predictor.predict(x)
    np.testing.assert_allclose(pred, cycles, rtol=1e-3)
    assert sum(model.predictor.coeffs) == pytest.approx(10.0, rel=1e-2)


def test_tiny_training_set():
    x = np.array([[1.0], [2.0], [3.0]])
    cycles = np.array([10.0, 20.0, 30.0])
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=0.0))
    assert model.predictor.predict_one([4.0]) == pytest.approx(40.0,
                                                               rel=1e-3)


def test_zero_feature_matrix():
    """A design with no detectable features still trains (intercept)."""
    specs = []
    matrix = FeatureMatrix(FeatureSet(specs), np.zeros((10, 0)),
                           np.full(10, 777.0))
    model = fit_predictor(matrix, TrainingConfig(gamma=1e-3))
    assert model.predictor.predict(np.zeros((3, 0))) \
        == pytest.approx([777.0] * 3, rel=1e-6)


def test_huge_dynamic_range():
    """Cycles spanning 5 orders of magnitude stay numerically stable."""
    rng = np.random.default_rng(4)
    x = np.exp(rng.uniform(0, 11, size=(80, 1)))
    cycles = 3.0 * x[:, 0] + 10.0
    model = fit_predictor(matrix_from(x, cycles),
                          TrainingConfig(gamma=1e-6))
    pred = model.predictor.predict(x)
    err = np.abs(pred - cycles) / cycles
    assert np.max(err) < 0.05
