"""Objective and solver tests: convexity, gradients, optimality."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import make_objective, solve


def random_problem(seed, n=40, p=5, alpha=4.0, gamma=0.0, noise=0.0):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, p))
    beta_true = rng.normal(size=p) * 3
    y = x @ beta_true + noise * rng.normal(size=n)
    return x, y, beta_true


def test_objective_validation():
    x = np.zeros((3, 2))
    y = np.zeros(3)
    with pytest.raises(ValueError, match="alpha"):
        make_objective(x, y, alpha=0.5, gamma=0.0)
    with pytest.raises(ValueError, match="gamma"):
        make_objective(x, y, alpha=2.0, gamma=-1.0)


def test_residual_weights():
    x = np.eye(2)
    y = np.array([1.0, -1.0])
    obj = make_objective(x, y, alpha=5.0, gamma=0.0)
    beta = np.zeros(2)
    # residuals = -1 (under) and +1 (over)
    w = obj.residual_weights(x @ beta - y)
    assert w.tolist() == [5.0, 1.0]


def test_smooth_value_asymmetry():
    x = np.array([[1.0]])
    obj_over = make_objective(x, np.array([0.0]), alpha=10.0, gamma=0.0)
    # beta=+1 -> residual +1 (over): cost 1; beta=-1 -> residual -1: cost 10
    assert obj_over.smooth_value(np.array([1.0])) == pytest.approx(1.0)
    assert obj_over.smooth_value(np.array([-1.0])) == pytest.approx(10.0)


def test_gradient_matches_finite_differences():
    x, y, _ = random_problem(1)
    obj = make_objective(x, y, alpha=6.0, gamma=0.0)
    rng = np.random.default_rng(2)
    beta = rng.normal(size=x.shape[1])
    grad = obj.smooth_grad(beta)
    eps = 1e-6
    for i in range(len(beta)):
        bp, bm = beta.copy(), beta.copy()
        bp[i] += eps
        bm[i] -= eps
        fd = (obj.smooth_value(bp) - obj.smooth_value(bm)) / (2 * eps)
        assert grad[i] == pytest.approx(fd, rel=1e-4, abs=1e-5)


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 1000),
    alpha=st.floats(1.0, 50.0),
    t=st.floats(0.0, 1.0),
)
def test_objective_is_convex_along_segments(seed, alpha, t):
    x, y, _ = random_problem(seed % 17, n=20, p=4)
    obj = make_objective(x, y, alpha=alpha, gamma=0.3)
    rng = np.random.default_rng(seed)
    a = rng.normal(size=4)
    b = rng.normal(size=4)
    mid = t * a + (1 - t) * b
    lhs = obj.value(mid)
    rhs = t * obj.value(a) + (1 - t) * obj.value(b)
    assert lhs <= rhs + 1e-8


def test_solver_recovers_exact_linear_model():
    x, y, beta_true = random_problem(3, noise=0.0)
    obj = make_objective(x, y, alpha=4.0, gamma=0.0)
    result = solve(obj)
    assert result.converged
    np.testing.assert_allclose(result.beta, beta_true, rtol=1e-4, atol=1e-5)


def test_solver_l1_zeroes_irrelevant_features():
    rng = np.random.default_rng(4)
    n = 120
    relevant = rng.normal(size=(n, 2))
    junk = rng.normal(size=(n, 6))
    x = np.hstack([relevant, junk])
    y = relevant @ np.array([5.0, -2.0])
    obj = make_objective(x, y, alpha=2.0, gamma=3.0)
    result = solve(obj)
    assert result.converged
    assert np.all(np.abs(result.beta[2:]) < 1e-3)
    assert np.all(np.abs(result.beta[:2]) > 0.5)


def test_solver_intercept_not_penalized():
    rng = np.random.default_rng(5)
    x = np.hstack([rng.normal(size=(80, 1)), np.ones((80, 1))])
    y = 2.0 * x[:, 0] + 100.0
    obj = make_objective(x, y, alpha=2.0, gamma=50.0)
    result = solve(obj)
    # Feature coefficient is shrunk by the strong L1, but the intercept
    # is free to hold the large offset.
    assert result.beta[1] == pytest.approx(100.0, rel=0.05)


def test_asymmetric_solution_sits_above_symmetric():
    """With alpha >> 1 the fit biases toward over-prediction."""
    rng = np.random.default_rng(6)
    n = 300
    x = np.ones((n, 1))
    y = rng.normal(loc=10.0, scale=2.0, size=n)
    sym = solve(make_objective(x, y, alpha=1.0, gamma=0.0)).beta[0]
    asym = solve(make_objective(x, y, alpha=25.0, gamma=0.0)).beta[0]
    assert sym == pytest.approx(np.mean(y), rel=1e-3)
    assert asym > sym + 1.0  # pushed well above the mean
    under_rate = float(np.mean(y > asym))
    assert under_rate < 0.2


def test_solver_reaches_reference_optimum():
    """Cross-check against scipy's general-purpose optimizer."""
    scipy_opt = pytest.importorskip("scipy.optimize")
    x, y, _ = random_problem(7, n=60, p=4, noise=1.0)
    obj = make_objective(x, y, alpha=9.0, gamma=0.0)
    ours = solve(obj)
    ref = scipy_opt.minimize(obj.smooth_value, np.zeros(4),
                             jac=obj.smooth_grad, method="L-BFGS-B")
    assert ours.value == pytest.approx(ref.fun, rel=1e-6, abs=1e-8)
