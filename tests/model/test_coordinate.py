"""Coordinate-descent solver tests: agreement with FISTA."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.model import make_objective, solve
from repro.model.coordinate import solve_coordinate


def random_problem(seed, n=50, p=5, noise=0.5):
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(n, p))
    beta_true = rng.normal(size=p) * 2
    y = x @ beta_true + noise * rng.normal(size=n)
    return x, y


def test_recovers_exact_solution():
    x, y = random_problem(1, noise=0.0)
    obj = make_objective(x, y, alpha=3.0, gamma=0.0)
    result = solve_coordinate(obj)
    assert result.converged
    np.testing.assert_allclose(x @ result.beta, y, atol=1e-4)


def test_l1_produces_exact_zeros():
    rng = np.random.default_rng(2)
    relevant = rng.normal(size=(100, 2))
    junk = rng.normal(size=(100, 4))
    x = np.hstack([relevant, junk])
    y = relevant @ np.array([4.0, -3.0])
    obj = make_objective(x, y, alpha=2.0, gamma=4.0)
    result = solve_coordinate(obj)
    assert result.converged
    assert np.all(result.beta[2:] == 0.0)  # exact zeros, not epsilons
    assert np.all(np.abs(result.beta[:2]) > 0.5)


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 200),
    alpha=st.floats(1.0, 20.0),
    gamma=st.floats(0.0, 5.0),
)
def test_agrees_with_fista(seed, alpha, gamma):
    """Two structurally different solvers find the same optimum."""
    x, y = random_problem(seed % 13, n=40, p=4)
    obj = make_objective(x, y, alpha=alpha, gamma=gamma)
    fista = solve(obj)
    coord = solve_coordinate(obj)
    assert coord.value == pytest.approx(fista.value, rel=1e-4,
                                        abs=1e-6)


def test_intercept_not_thresholded():
    rng = np.random.default_rng(3)
    x = np.hstack([rng.normal(size=(60, 1)), np.ones((60, 1))])
    y = 3.0 * x[:, 0] + 50.0
    obj = make_objective(x, y, alpha=2.0, gamma=30.0,
                         intercept_col=1)
    result = solve_coordinate(obj)
    assert result.beta[1] == pytest.approx(50.0, rel=0.05)


def test_warm_start_converges_fast():
    x, y = random_problem(4)
    obj = make_objective(x, y, alpha=5.0, gamma=0.5)
    cold = solve_coordinate(obj)
    warm = solve_coordinate(obj, beta0=cold.beta)
    assert warm.converged
    assert warm.iterations <= 3
