"""Property tests for the design-space sampler itself.

Every design :func:`repro.gen.sample_design` emits — across seeds and
complexity tiers — must be a first-class citizen of the stack: lint
clean, exportable to Verilog, accepted by the stepjit and batch
compilers, deterministic in its seed, and terminating on every
sampled workload.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.gen import COMPLEXITIES, sample_design, sample_workload
from repro.rtl import (
    BatchScalarSimulation,
    Simulation,
    compile_batch_stepper,
    compile_module,
    compile_stepper,
    errors_only,
    lint_module,
    synthesize,
    to_verilog,
)

seed_strategy = st.integers(0, 9999)
complexity_strategy = st.sampled_from(sorted(COMPLEXITIES))


@settings(max_examples=40, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_sampled_designs_are_lint_clean(seed, complexity):
    module = sample_design(seed, complexity).build()
    assert errors_only(lint_module(module)) == []


@settings(max_examples=25, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_sampled_designs_export_verilog(seed, complexity):
    design = sample_design(seed, complexity)
    module = design.build()
    text = to_verilog(module)
    assert f"module {design.name} (" in text
    assert text.count("endmodule") == 1
    for counter in module.counters:
        assert counter in text


@settings(max_examples=25, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_sampled_designs_compile_on_every_backend(seed, complexity):
    """compiled / stepjit / batch codegen all accept every sample."""
    module = sample_design(seed, complexity).build()
    compile_module(module)
    compile_stepper(module)
    compile_batch_stepper(module)


@settings(max_examples=20, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_sampled_designs_synthesize(seed, complexity):
    netlist = synthesize(sample_design(seed, complexity).build())
    assert len(netlist.cells) > 0


@settings(max_examples=15, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy,
       wseed=st.integers(0, 99))
def test_sampled_workloads_terminate(seed, complexity, wseed):
    design = sample_design(seed, complexity)
    module = design.build()
    for items in sample_workload(design, 2, seed=wseed):
        job = design.encode_job(items)
        sim = Simulation(module)
        sim.load(inputs=job.inputs, memories=job.memories)
        result = sim.run(max_cycles=2_000_000)
        assert result.finished
        assert result.cycles > len(items)


@settings(max_examples=10, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_batch_scalar_adapter_runs_samples(seed, complexity):
    design = sample_design(seed, complexity)
    module = design.build()
    items = sample_workload(design, 1, seed=5)[0]
    job = design.encode_job(items)
    sim = BatchScalarSimulation(module)
    sim.load(inputs=job.inputs, memories=job.memories)
    assert sim.run(max_cycles=2_000_000).finished


@settings(max_examples=15, deadline=None)
@given(seed=seed_strategy, complexity=complexity_strategy)
def test_sampling_is_deterministic(seed, complexity):
    a = sample_design(seed, complexity)
    b = sample_design(seed, complexity)
    assert a.spec == b.spec
    assert a.nominal_frequency == b.nominal_frequency
    assert sample_workload(a, 3, seed=7) == sample_workload(b, 3, seed=7)


def test_complexity_tiers_are_distinct():
    """Tier knobs actually widen the space: more stages at large."""
    small = sample_design(0, "small").spec
    assert len(small.pipeline) <= 3
    # Across a few seeds, large must use fork/join at least once
    # (p=0.8 per seed) and medium never does.
    assert any(
        type(block).__name__ == "ForkJoinSpec"
        for s in range(5)
        for block in sample_design(s, "large").spec.pipeline)
    assert not any(
        type(block).__name__ == "ForkJoinSpec"
        for s in range(5)
        for block in sample_design(s, "medium").spec.pipeline)


def test_unknown_complexity_rejected():
    import pytest

    with pytest.raises(ValueError, match="unknown complexity"):
        sample_design(0, "xl")
