"""Tests for the differential conformance harness.

One fast end-to-end battery on a small seed (the 10-seed sweep runs
in CI's ``gen`` job), plus unit coverage of the report mechanics and
the backend-agreement checker's failure mode.
"""

from __future__ import annotations

import pytest

from repro.gen import (
    ConformanceReport,
    conform_design,
    run_conformance,
    sample_design,
    sample_workload,
)
from repro.gen.conformance import CHECKS, check_backend_agreement


def test_full_battery_passes_on_small_seed():
    reports = run_conformance([0], complexity="small",
                              n_train=12, n_test=6)
    assert len(reports) == 1
    report = reports[0]
    assert tuple(report.checks) == CHECKS
    assert report.passed, report.failures
    assert report.failures == {}
    assert "PASS" in report.summary()


def test_report_mechanics():
    report = ConformanceReport(design="gen0_s", seed=0,
                               complexity="small")
    assert not report.passed  # no checks run yet
    report.checks["lint"] = None
    report.checks["flow"] = "boom"
    assert not report.passed
    assert report.failures == {"flow": "boom"}
    assert "FAIL" in report.summary()
    assert "flow" in report.summary()
    report.checks["flow"] = None
    assert report.passed


def test_backend_agreement_runs_clean():
    design = sample_design(1, "small")
    check_backend_agreement(design, sample_workload(design, 2, seed=3))


def test_backend_agreement_catches_divergence():
    """A design that never terminates must be reported, not hung."""
    design = sample_design(1, "small")
    with pytest.raises(RuntimeError, match="did not terminate"):
        check_backend_agreement(design,
                                sample_workload(design, 1, seed=3),
                                max_cycles=3)


def test_conform_design_survives_broken_designs():
    """conform_design never raises: a sabotaged design yields a FAIL
    report whose downstream checks are skipped, not a crash."""
    design = sample_design(0, "small")
    design.encode_job = None  # break every job-encoding consumer
    report = conform_design(design, n_train=4, n_test=2)
    assert not report.passed
    assert tuple(report.checks) == CHECKS
    # Lint and Verilog only need the module, so they still pass.
    assert report.checks["lint"] is None
    assert report.checks["verilog"] is None
    assert report.checks["backends"] is not None
    assert report.checks["flow"] is not None
    assert report.checks["episode:asic"].startswith("skipped")
    assert report.checks["stream:poisson"].startswith("skipped")
