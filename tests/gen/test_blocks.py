"""Unit tests for the composable design builder.

Each block of the vocabulary is lowered alone onto a minimal spec and
its cycle-level behaviour is checked against a hand computation —
branch arms route on the mode bit, fork/join time is the max of the
branch waits, producers tick beside the main loop, and invalid specs
are rejected at construction.
"""

from __future__ import annotations

import pytest

from repro.gen import (
    BranchSpec,
    DesignSpec,
    FieldSpec,
    ForkJoinSpec,
    ProducerSpec,
    StageSpec,
    build_module,
)
from repro.rtl import Simulation, errors_only, lint_module

FIELDS = (FieldSpec("f0", offset=0, bits=6),
          FieldSpec("mode", offset=11, bits=1))


def _spec(pipeline, **kw):
    return DesignSpec(name="unit", fields=FIELDS,
                      pipeline=tuple(pipeline), mem_depth=32,
                      mem_width=12, **kw)


def _run(module, items):
    sim = Simulation(module)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    result = sim.run(max_cycles=100_000)
    assert result.finished
    return result, sim


def test_wait_stage_duration_is_affine():
    # IDLE -> W(base + coeff*f0) -> EMIT -> DONE; one item.
    module = build_module(
        _spec([StageSpec("wait", "W", base=3, coeff=2, field="f0")]))
    r5, sim5 = _run(module, [5])
    r9, _ = _run(module, [9])
    # Same path, durations differ by coeff * (9 - 5).
    assert r9.cycles - r5.cycles == 2 * (9 - 5)
    # Residency = duration + 1 (the entry cycle loads the counter).
    assert sim5.state_cycles[("ctrl", "W")] == 3 + 2 * 5 + 1


def test_step_stage_is_single_cycle():
    # Constant-duration waits so the comparison isolates the step.
    waits = build_module(_spec([
        StageSpec("wait", "W", base=6, coeff=0),
    ]))
    stepped = build_module(_spec([
        StageSpec("step", "P"),
        StageSpec("wait", "W", base=6, coeff=0),
    ]))
    a, _ = _run(waits, [4, 7])
    b, sim = _run(stepped, [4, 7])
    assert b.cycles - a.cycles == 2  # one extra cycle per item
    assert sim.state_cycles[("ctrl", "P")] == 2


def test_branch_routes_on_mode_bit():
    branch = BranchSpec("BR", mode_field="mode", arms=(
        StageSpec("wait", "A", base=4, coeff=0),
        StageSpec("wait", "B", base=19, coeff=0),
    ))
    module = build_module(_spec([branch]))
    _, sim_a = _run(module, [0])             # mode bit clear -> arm A
    _, sim_b = _run(module, [1 << 11])       # mode bit set -> arm B
    assert sim_a.state_cycles.get(("ctrl", "A"), 0) == 4 + 1
    assert sim_a.state_cycles.get(("ctrl", "B"), 0) == 0
    assert sim_b.state_cycles.get(("ctrl", "B"), 0) == 19 + 1
    assert sim_b.state_cycles.get(("ctrl", "A"), 0) == 0


def test_fork_join_waits_for_slowest_branch():
    fork = ForkJoinSpec("FJ", branches=(
        StageSpec("wait", "K0", base=5, coeff=0),
        StageSpec("wait", "K1", base=17, coeff=0),
    ))
    short = build_module(_spec([fork]))
    alone = build_module(_spec([
        StageSpec("wait", "K1", base=17, coeff=0)]))
    a, sim = _run(short, [0])
    b, _ = _run(alone, [0])
    # JOIN parks until the slow branch finishes: the fork costs the
    # max of the branches (plus fork/join bookkeeping), never the sum.
    run1 = sim.state_cycles[("fj_br1", "RUN")]
    run0 = sim.state_cycles[("fj_br0", "RUN")]
    assert run1 - run0 == 17 - 5
    assert a.cycles < b.cycles + 10  # far below 5 + 17 serial

    # Branch FSMs re-arm between items.
    multi, sim2 = _run(short, [0, 0, 0])
    assert sim2.state_cycles[("fj_br1", "RUN")] == 3 * run1


def test_producer_runs_beside_main_loop():
    spec = _spec(
        [StageSpec("wait", "W", base=30, coeff=0)],
        producer=ProducerSpec("prod", "feed", depth=16, width=8,
                              base=2, mask=0x7),
    )
    module = build_module(spec)
    sim = Simulation(module)
    sim.load(inputs={"n_items": 1},
             memories={"items": [0], "feed": [3] * 16})
    result = sim.run(max_cycles=100_000)
    assert result.finished
    # The producer fetched at least a few words while ctrl was busy.
    assert sim.state_cycles.get(("prod", "FETCH"), 0) > 0
    assert sim.state["prod_ptr"] > 0


def test_builder_output_is_lint_clean():
    fork = ForkJoinSpec("FJ", branches=(
        StageSpec("wait", "K0", base=2, coeff=1, field="f0"),
        StageSpec("wait", "K1", base=3, coeff=2, field="f0"),
    ))
    branch = BranchSpec("BR", mode_field="mode", arms=(
        StageSpec("wait", "A", base=4, coeff=1, field="f0"),
        StageSpec("wait", "B", base=9, coeff=0),
    ))
    spec = _spec(
        [StageSpec("step", "P"), branch, fork,
         StageSpec("dyn", "D", base=2, coeff=1, field="f0")],
        producer=ProducerSpec("prod", "feed", depth=16, width=8),
        busy_counter=True,
    )
    assert errors_only(lint_module(build_module(spec))) == []


def test_invalid_specs_rejected():
    with pytest.raises(ValueError, match="unknown stage kind"):
        StageSpec("warp", "X")
    with pytest.raises(ValueError, match="base must be >= 1"):
        StageSpec("wait", "X", base=0)
    with pytest.raises(ValueError, match="arms must be wait"):
        BranchSpec("BR", mode_field="mode", arms=(
            StageSpec("step", "A"), StageSpec("wait", "B", base=1)))
    with pytest.raises(ValueError, match="at least two branches"):
        ForkJoinSpec("FJ", branches=(
            StageSpec("wait", "K0", base=1),))
    with pytest.raises(ValueError, match="no stages"):
        build_module(_spec([]))
    with pytest.raises(TypeError, match="unknown block"):
        build_module(_spec(["not-a-block"]))


def test_zero_items_parks_in_idle():
    """n_items == 0 holds in IDLE (the item-loop launch contract);
    workload generators always emit at least one item."""
    module = build_module(_spec([
        StageSpec("wait", "W", base=5, coeff=0)]))
    sim = Simulation(module)
    sim.load(inputs={"n_items": 0}, memories={"items": []})
    result = sim.run(max_cycles=50)
    assert not result.finished
    assert sim.state_cycles.get(("ctrl", "W"), 0) == 0
