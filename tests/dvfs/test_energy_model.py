"""Energy model and DVFS model tests."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicEnergyModel,
    AsicVfModel,
    FpgaEnergyModel,
    JobActivity,
    OperatingPoint,
    activity_from_run,
    build_level_table,
    required_frequency,
    select_level,
)
from repro.rtl import Simulation, synthesize
from repro.units import MHZ, MS
from tests.conftest import build_toy, pack_item


@pytest.fixture(scope="module")
def toy_energy():
    module = build_toy()
    netlist = synthesize(module)
    return module, AsicEnergyModel.from_netlist(netlist), netlist


@pytest.fixture(scope="module")
def levels():
    vf = AsicVfModel.characterize(250 * MHZ)
    return build_level_table(vf, ASIC_VOLTAGES)


def test_dynamic_energy_scales_quadratically(toy_energy):
    _, model, _ = toy_energy
    activity = JobActivity(cycles=1000)
    nominal = OperatingPoint(1.0, 250 * MHZ)
    half_v = OperatingPoint(0.5, 125 * MHZ)
    # Zero-duration isolates the dynamic part.
    e1 = model.job_energy(activity, nominal, duration=0.0)
    e2 = model.job_energy(activity, half_v, duration=0.0)
    assert e2 == pytest.approx(e1 * 0.25)


def test_leakage_integrates_over_time(toy_energy):
    _, model, _ = toy_energy
    activity = JobActivity(cycles=1000)
    point = OperatingPoint(1.0, 250 * MHZ)
    e_short = model.job_energy(activity, point, duration=1 * MS)
    e_long = model.job_energy(activity, point, duration=2 * MS)
    assert e_long > e_short
    leak_power = (e_long - e_short) / (1 * MS)
    assert leak_power > 0


def test_datapath_energy_counted_only_when_active(toy_energy):
    _, model, _ = toy_energy
    idle = JobActivity(cycles=1000, block_cycles={"alu_a": 0, "alu_b": 0})
    busy = JobActivity(cycles=1000, block_cycles={"alu_a": 900, "alu_b": 0})
    point = OperatingPoint(1.0, 250 * MHZ)
    assert (model.job_energy(busy, point, 0.0)
            > model.job_energy(idle, point, 0.0))


def test_activity_from_run_maps_states(toy_energy):
    module, _, _ = toy_energy
    sim = Simulation(module)
    items = [pack_item(10, 0), pack_item(10, 1)]
    sim.load(inputs={"n_items": 2}, memories={"items": items})
    result = sim.run()
    activity = activity_from_run(module, result)
    assert activity.cycles == result.cycles
    assert activity.block_cycles["alu_a"] == result.cycles_in("ctrl", "COMP_A")
    assert activity.block_cycles["alu_b"] == result.cycles_in("ctrl", "COMP_B")
    assert activity.block_cycles["alu_a"] == 31  # 10*3 wait + 1 exit cycle


def test_running_slower_at_lower_voltage_saves_energy(toy_energy, levels):
    """The core DVFS premise: lowest feasible level wins on energy."""
    _, model, _ = toy_energy
    cycles = 2_000_000
    activity = JobActivity(cycles=cycles)
    energies = []
    for point in levels:
        t_exec = cycles / point.frequency
        energies.append(model.job_energy(activity, point, t_exec))
    # Energies increase with level (voltage) despite shorter runtimes.
    assert energies == sorted(energies)


def test_fpga_energy_model_shape(toy_energy):
    module, _, netlist = toy_energy
    model = FpgaEnergyModel.from_netlist(netlist)
    activity = JobActivity(cycles=1000, block_cycles={"alu_b": 500})
    point = OperatingPoint(1.0, 100 * MHZ)
    assert model.job_energy(activity, point, 1 * MS) > 0
    # V^2 scaling holds for FPGA dynamic too.
    low = OperatingPoint(0.5, 50 * MHZ)
    assert (model.job_energy(activity, low, 0.0)
            == pytest.approx(model.job_energy(activity, point, 0.0) * 0.25))


def test_required_frequency_math():
    # 1M cycles, 10ms budget, no overheads: 100 MHz.
    f = required_frequency(1_000_000, 250 * MHZ, budget=10 * MS)
    assert f == pytest.approx(100 * MHZ)
    # 10% margin raises it accordingly.
    f = required_frequency(1_000_000, 250 * MHZ, budget=10 * MS,
                           margin_fraction=0.1)
    assert f == pytest.approx(110 * MHZ)
    # Overheads shrink the available budget.
    f = required_frequency(1_000_000, 250 * MHZ, budget=10 * MS,
                           t_slice=1 * MS, t_switch=1 * MS)
    assert f == pytest.approx(125 * MHZ)
    # No budget at all -> infinite requirement.
    assert required_frequency(1, 250 * MHZ, budget=1 * MS,
                              t_slice=2 * MS) == float("inf")


def test_select_level_picks_lowest_meeting(levels):
    budget = 16.7 * MS
    # A tiny job can use the slowest level.
    decision = select_level(levels, 1000, budget)
    assert decision.feasible
    assert decision.point == levels.slowest
    # A job needing exactly nominal.
    cycles = int(levels.nominal.frequency * budget)
    decision = select_level(levels, cycles, budget)
    assert decision.feasible
    assert decision.point == levels.nominal


def test_select_level_infeasible_runs_flat_out(levels):
    budget = 1 * MS
    cycles = int(levels.nominal.frequency * budget * 2)
    decision = select_level(levels, cycles, budget)
    assert not decision.feasible
    assert decision.point == levels.nominal
    boosted = select_level(levels, cycles, budget, allow_boost=True)
    assert boosted.point == levels.boost


def test_select_level_boost_when_barely_infeasible(levels):
    budget = 10 * MS
    # Needs 4% more than nominal: only boost can deliver.
    cycles = int(levels.nominal.frequency * budget * 1.04)
    without = select_level(levels, cycles, budget)
    assert not without.feasible
    with_boost = select_level(levels, cycles, budget, allow_boost=True)
    assert with_boost.feasible
    assert with_boost.point.is_boost
