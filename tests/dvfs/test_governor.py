"""Interval-governor (devfreq simple_ondemand style) tests."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    IntervalGovernorController,
    JobActivity,
    build_level_table,
)
from repro.runtime import JobRecord, Task, run_episode
from repro.units import MHZ, MS


class FlatEnergyModel:
    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        return activity.cycles * 1e-9 * point.voltage ** 2 + 1e-3 * duration


@pytest.fixture(scope="module")
def levels():
    return build_level_table(AsicVfModel.characterize(250 * MHZ),
                             ASIC_VOLTAGES)


def job(index, cycles):
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles))


TASK = Task("t", deadline=16.7 * MS)


def test_parameter_validation(levels):
    with pytest.raises(ValueError, match="up_threshold"):
        IntervalGovernorController(levels, 0.0, up_threshold=1.5)
    with pytest.raises(ValueError, match="down_differential"):
        IntervalGovernorController(levels, 0.0, up_threshold=0.5,
                                   down_differential=0.6)


def test_starts_at_nominal(levels):
    gov = IntervalGovernorController(levels, 100e-6)
    assert gov.plan(job(0, 1000), TASK.deadline).point == levels.nominal


def test_scales_down_on_low_utilization(levels):
    gov = IntervalGovernorController(levels, 100e-6)
    light = int(levels.nominal.frequency * 2 * MS)  # ~12% utilization
    result = run_episode(gov, [job(i, light) for i in range(6)], TASK,
                         FlatEnergyModel())
    # After the first observation, the governor drops the level.
    assert result.outcomes[0].frequency == levels.nominal.frequency
    assert result.outcomes[-1].frequency < levels.nominal.frequency


def test_scales_back_up_on_saturation(levels):
    gov = IntervalGovernorController(levels, 100e-6)
    light = int(levels.nominal.frequency * 1 * MS)
    heavy = int(levels.nominal.frequency * 14 * MS)
    jobs = [job(0, light), job(1, light), job(2, heavy), job(3, heavy)]
    result = run_episode(gov, jobs, TASK, FlatEnergyModel())
    # The heavy job arrives while the level is low -> utilization
    # explodes -> governor jumps back up for the following job.
    assert result.outcomes[3].frequency > result.outcomes[2].frequency


def test_holds_within_hysteresis_band(levels):
    gov = IntervalGovernorController(levels, 100e-6, up_threshold=0.9,
                                     down_differential=0.15)
    gov.plan(job(0, 1), TASK.deadline)
    # Utilization 0.8 sits inside (0.75, 0.9): hold the level.
    busy = int(levels.nominal.frequency * 0.8 * TASK.deadline)
    gov.observe(job(0, busy))
    assert gov.plan(job(1, 1), TASK.deadline).point == levels.nominal


def test_governor_lags_spiky_workloads(levels):
    """The paper's point: interval governors mis-handle variability."""
    gov = IntervalGovernorController(levels, 100e-6)
    light = int(levels.nominal.frequency * 1.5 * MS)
    heavy = int(levels.nominal.frequency * 15 * MS)
    jobs = []
    for i in range(30):
        jobs.append(job(i, heavy if i % 5 == 4 else light))
    result = run_episode(gov, jobs, TASK, FlatEnergyModel())
    # Every spike lands while the governor idles at a low level.
    assert result.miss_count >= 4


def test_reset_restores_nominal(levels):
    gov = IntervalGovernorController(levels, 100e-6)
    gov.plan(job(0, 1), TASK.deadline)
    gov.observe(job(0, int(levels.nominal.frequency * 1 * MS)))
    gov.reset()
    assert gov.plan(job(1, 1), TASK.deadline).point == levels.nominal


def test_reset_clears_stale_period(levels):
    """Regression: ``reset()`` restored the level but left ``_period``
    at the previous episode's budget, so an ``observe`` issued before
    the next ``plan`` divided by a stale denominator."""
    gov = IntervalGovernorController(levels, 100e-6)
    gov.plan(job(0, 1), 2 * TASK.deadline)  # records a long period
    gov.reset()
    assert gov._period == 0.0
    # With no recorded period, busy time is its own period: the first
    # post-reset observation reads full utilization, not ~50%.
    gov.observe(job(0, int(levels.nominal.frequency * 1 * MS)))
    assert gov.plan(job(1, 1), TASK.deadline).point == levels.nominal


def test_reset_makes_reruns_identical(levels):
    gov = IntervalGovernorController(levels, 100e-6)
    light = int(levels.nominal.frequency * 1.5 * MS)
    heavy = int(levels.nominal.frequency * 15 * MS)
    jobs = [job(i, heavy if i % 5 == 4 else light) for i in range(20)]
    first = run_episode(gov, jobs, TASK, FlatEnergyModel())
    second = run_episode(gov, jobs, TASK, FlatEnergyModel())
    assert [o.frequency for o in first.outcomes] \
        == [o.frequency for o in second.outcomes]
    assert first.total_energy == second.total_energy
