"""PID predictor tests, including the paper's Fig 3 lag behaviour."""

import pytest

from repro.dvfs import PidGains, PidPredictor, replay_errors, tune_pid


def test_first_observation_seeds_prediction():
    pid = PidPredictor()
    assert pid.predict() is None
    pid.observe(100.0)
    assert pid.predict() == 100.0


def test_converges_on_constant_series():
    pid = PidPredictor(PidGains(0.6, 0.05, 0.1))
    for _ in range(50):
        pid.observe(42.0)
    assert pid.predict() == pytest.approx(42.0, rel=1e-6)


def test_tracks_slow_ramp():
    pid = PidPredictor(PidGains(0.8, 0.1, 0.1))
    value = 100.0
    for step in range(200):
        value += 0.5
        pid.observe(value)
    assert pid.predict() == pytest.approx(value, rel=0.02)


def test_lags_behind_spikes_like_fig3():
    """A one-frame spike causes an under-prediction at the spike and an
    over-prediction right after — the paper's Fig 3 failure mode."""
    pid = PidPredictor(PidGains(0.8, 0.0, 0.0))
    for _ in range(20):
        pid.observe(100.0)
    # Spike arrives: the controller had predicted ~100.
    before_spike = pid.predict()
    assert before_spike == pytest.approx(100.0, rel=1e-6)
    pid.observe(200.0)  # the spike itself (under-predicted by ~100)
    after_spike = pid.predict()
    assert after_spike > 150.0  # now it over-predicts the next normal job
    pid.observe(100.0)


def test_prediction_never_negative():
    pid = PidPredictor(PidGains(1.0, 0.5, 0.5))
    pid.observe(100.0)
    for _ in range(10):
        pid.observe(0.001)
    assert pid.predict() >= 0.0


def test_integral_antiwindup_bounds_response():
    pid = PidPredictor(PidGains(0.1, 0.2, 0.0), integral_limit=2.0)
    pid.observe(100.0)
    for _ in range(500):
        pid.observe(1000.0)
    # Without anti-windup the integral would have grown unboundedly and
    # overshot by orders of magnitude on reversal.
    pid.observe(100.0)
    assert pid.predict() < 5000.0


def test_replay_errors_zero_for_constant():
    assert replay_errors([5.0] * 20, PidGains(1.0, 0.0, 0.0)) < 1e-12


def test_tune_pid_beats_default_on_structured_series():
    series = [100.0, 100.0, 100.0, 180.0] * 30  # periodic spikes
    tuned = tune_pid(series)
    default_err = replay_errors(series, PidGains(0.6, 0.05, 0.1))
    tuned_err = replay_errors(series, tuned)
    assert tuned_err <= default_err


def test_tune_pid_short_series_fallback():
    gains = tune_pid([1.0, 2.0])
    assert isinstance(gains, PidGains)
