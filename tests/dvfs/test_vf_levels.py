"""Voltage-frequency model and level table tests."""

import pytest
from hypothesis import given, strategies as st

from repro.dvfs import (
    ASIC_VOLTAGES,
    AlphaPowerDevice,
    AsicVfModel,
    FPGA_VOLTAGES,
    Fo4Chain,
    FpgaVfModel,
    LevelTable,
    OperatingPoint,
    build_level_table,
)
from repro.units import MHZ


def test_alpha_power_current_monotone():
    dev = AlphaPowerDevice()
    assert dev.drive_current(1.0) > dev.drive_current(0.7)
    with pytest.raises(ValueError):
        dev.drive_current(0.3)


def test_fo4_chain_calibration():
    cycle = 1.0 / (250 * MHZ)
    chain = Fo4Chain.calibrate(cycle)
    assert chain.delay(1.0) == pytest.approx(cycle, rel=1e-12)
    with pytest.raises(ValueError):
        Fo4Chain.calibrate(-1.0)


def test_asic_vf_nominal_anchor():
    vf = AsicVfModel.characterize(250 * MHZ)
    assert vf.frequency_at(1.0) == pytest.approx(250 * MHZ, rel=1e-9)
    assert vf.scale_at(1.0) == pytest.approx(1.0)


def test_asic_vf_halves_near_lowest_level():
    """At 0.625 V the alpha-power model lands around a third of
    nominal — bottom levels trade a lot of speed for quadratic energy,
    the regime the paper's six-level table spans."""
    vf = AsicVfModel.characterize(500 * MHZ)
    scale = vf.scale_at(0.625)
    assert 0.25 < scale < 0.55


@given(st.floats(0.5, 1.08), st.floats(0.5, 1.08))
def test_asic_vf_monotone_property(v1, v2):
    vf = AsicVfModel.characterize(250 * MHZ)
    if v1 < v2:
        assert vf.frequency_at(v1) < vf.frequency_at(v2)


def test_fpga_vf_interpolation():
    vf = FpgaVfModel(f_nominal=100 * MHZ)
    assert vf.scale_at(1.0) == pytest.approx(1.0)
    assert vf.scale_at(0.7) == pytest.approx(0.52)
    # Midpoint of a segment interpolates linearly.
    mid = vf.scale_at(0.725)
    assert mid == pytest.approx((0.52 + 0.62) / 2)
    with pytest.raises(ValueError):
        vf.scale_at(0.5)


def test_fpga_vf_boost_extrapolation():
    vf = FpgaVfModel(f_nominal=100 * MHZ)
    assert vf.scale_at(1.08) > 1.0


def test_paper_level_tables_have_paper_counts():
    assert len(ASIC_VOLTAGES) == 6
    assert len(FPGA_VOLTAGES) == 7
    assert ASIC_VOLTAGES[0] == 1.0 and ASIC_VOLTAGES[-1] == 0.625
    # Equally spaced.
    gaps = {round(a - b, 9) for a, b in zip(ASIC_VOLTAGES, ASIC_VOLTAGES[1:])}
    assert len(gaps) == 1


def test_build_level_table_asic():
    vf = AsicVfModel.characterize(250 * MHZ)
    table = build_level_table(vf, ASIC_VOLTAGES)
    assert len(table) == 6
    assert table.nominal.voltage == 1.0
    assert table.slowest.voltage == 0.625
    assert table.boost is not None
    assert table.boost.voltage == pytest.approx(1.08)
    assert table.boost.frequency > table.nominal.frequency
    freqs = [p.frequency for p in table]
    assert freqs == sorted(freqs)


def test_lowest_meeting_selection():
    vf = AsicVfModel.characterize(250 * MHZ)
    table = build_level_table(vf, ASIC_VOLTAGES)
    # Asking for barely anything gives the slowest level.
    assert table.lowest_meeting(1.0) == table.slowest
    # Asking for exactly nominal gives nominal.
    assert table.lowest_meeting(table.nominal.frequency) == table.nominal
    # Asking for more than nominal fails without boost.
    too_fast = table.nominal.frequency * 1.01
    assert table.lowest_meeting(too_fast) is None
    assert table.lowest_meeting(too_fast, allow_boost=True) == table.boost
    # More than even boost can deliver.
    way_too_fast = table.boost.frequency * 1.01
    assert table.lowest_meeting(way_too_fast, allow_boost=True) is None


def test_lowest_meeting_exact_frequency_boundary():
    """``frequency >= f_required`` is inclusive: asking for exactly a
    level's frequency must return that level, not the next one up."""
    vf = AsicVfModel.characterize(250 * MHZ)
    table = build_level_table(vf, ASIC_VOLTAGES)
    for point in table:
        assert table.lowest_meeting(point.frequency) == point
    assert table.lowest_meeting(table.boost.frequency,
                                allow_boost=True) == table.boost


def test_select_level_exact_fit_is_feasible():
    from repro.dvfs import select_level
    table = LevelTable([OperatingPoint(0.7, 50 * MHZ),
                        OperatingPoint(1.0, 100 * MHZ)])
    budget = 10e-3
    # f_required computes to exactly 100 MHz / exactly 50 MHz.
    exact_nominal = select_level(table, 1_000_000, budget)
    assert exact_nominal.feasible
    assert exact_nominal.point == table.nominal
    assert exact_nominal.f_required == pytest.approx(100 * MHZ)
    exact_slowest = select_level(table, 500_000, budget)
    assert exact_slowest.feasible
    assert exact_slowest.point == table.slowest


def test_select_level_infeasible_falls_back_to_fastest():
    from repro.dvfs import select_level
    table = LevelTable([
        OperatingPoint(0.7, 50 * MHZ),
        OperatingPoint(1.0, 100 * MHZ),
        OperatingPoint(1.08, 120 * MHZ, is_boost=True),
    ])
    budget = 10e-3
    # 200 MHz required: beyond even boost -> flat out, flagged.
    without = select_level(table, 2_000_000, budget)
    assert not without.feasible and without.point == table.nominal
    with_boost = select_level(table, 2_000_000, budget, allow_boost=True)
    assert not with_boost.feasible and with_boost.point == table.boost
    # 115 MHz required: only boost reaches it.
    rescued = select_level(table, 1_150_000, budget, allow_boost=True)
    assert rescued.feasible and rescued.point == table.boost


def test_select_level_overheads_can_consume_the_budget():
    from repro.dvfs import select_level
    table = LevelTable([OperatingPoint(1.0, 100 * MHZ)])
    # Slice + switch eat the whole budget: required frequency is
    # infinite, the decision infeasible — but never a ZeroDivisionError.
    starved = select_level(table, 100, 1e-3, t_slice=0.5e-3,
                           t_switch=0.5e-3)
    assert not starved.feasible
    assert starved.f_required == float("inf")
    # A negative prediction clamps to zero cycles -> slowest level.
    clamped = select_level(table, -42.0, 1e-3)
    assert clamped.feasible and clamped.point == table.slowest


def test_duplicate_frequency_table_is_deterministic():
    """Frequency ties sort stably, so selection among duplicates is
    deterministic: the first-listed duplicate wins ``lowest_meeting``
    and the last-listed one is ``nominal``."""
    first = OperatingPoint(1.0, 100 * MHZ)
    second = OperatingPoint(0.8, 100 * MHZ)
    table = LevelTable([first, second])
    assert len(table) == 2
    assert table.lowest_meeting(100 * MHZ) == first
    assert table.lowest_meeting(99 * MHZ) == first
    assert table.nominal == second
    assert table.slowest == first


def test_level_table_requires_non_boost():
    with pytest.raises(ValueError):
        LevelTable([OperatingPoint(1.08, 300 * MHZ, is_boost=True)])


def test_operating_point_validation():
    with pytest.raises(ValueError):
        OperatingPoint(0.0, 100 * MHZ)
    with pytest.raises(ValueError):
        OperatingPoint(1.0, 0.0)
