"""Property-based tests for level selection and the deadline epsilon.

Hand-picked constants can only probe the boundaries someone thought
of; these generate (cycles, budget, margin) triples and whole float
neighborhoods around the exact-fit frontier.  Requires ``hypothesis``
(a dev extra) — skipped cleanly where it is absent.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.dvfs import (  # noqa: E402
    ASIC_VOLTAGES,
    AsicVfModel,
    build_level_table,
    select_level,
)
from repro.units import MHZ, TIME_EPS_REL, deadline_missed  # noqa: E402

#: One table for the whole module — characterization is deterministic.
LEVELS = build_level_table(AsicVfModel.characterize(100 * MHZ),
                           ASIC_VOLTAGES)

cycles_st = st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False)
budget_st = st.floats(min_value=1e-6, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
margin_st = st.floats(min_value=0.0, max_value=0.5,
                      allow_nan=False, allow_infinity=False)
boost_st = st.booleans()


@settings(deadline=None)
@given(cycles=cycles_st, budgets=st.tuples(budget_st, budget_st),
       margin=margin_st, boost=boost_st)
def test_select_level_monotone_in_budget(cycles, budgets, margin, boost):
    """A looser deadline never selects a faster level."""
    tight, loose = sorted(budgets)
    fast = select_level(LEVELS, cycles, tight, margin_fraction=margin,
                        allow_boost=boost)
    slow = select_level(LEVELS, cycles, loose, margin_fraction=margin,
                        allow_boost=boost)
    assert fast.point.frequency >= slow.point.frequency
    # Feasibility is monotone too: what fits in tight fits in loose.
    if fast.feasible:
        assert slow.feasible


@settings(deadline=None)
@given(cycles=st.tuples(cycles_st, cycles_st), budget=budget_st,
       margin=margin_st, boost=boost_st)
def test_select_level_monotone_in_cycles(cycles, budget, margin, boost):
    """A bigger prediction never selects a slower level."""
    small, large = sorted(cycles)
    a = select_level(LEVELS, small, budget, margin_fraction=margin,
                     allow_boost=boost)
    b = select_level(LEVELS, large, budget, margin_fraction=margin,
                     allow_boost=boost)
    assert b.point.frequency >= a.point.frequency
    if b.feasible:
        assert a.feasible


@settings(deadline=None)
@given(cycles=cycles_st, budget=budget_st, margin=margin_st,
       boost=boost_st)
def test_selected_level_is_minimal(cycles, budget, margin, boost):
    """The selected point is the *slowest* one meeting f_required."""
    decision = select_level(LEVELS, cycles, budget,
                            margin_fraction=margin, allow_boost=boost)
    if not decision.feasible:
        assert decision.point == LEVELS.fastest(allow_boost=boost)
        assert all(p.frequency < decision.f_required for p in LEVELS)
        return
    assert decision.point.frequency >= decision.f_required
    slower = [p for p in LEVELS
              if p.frequency < decision.point.frequency]
    assert all(p.frequency < decision.f_required for p in slower)


@settings(deadline=None)
@given(f_required=st.floats(min_value=0.0, max_value=1e10,
                            allow_nan=False),
       boost=boost_st)
def test_lowest_meeting_matches_brute_force(f_required, boost):
    candidates = list(LEVELS.points)
    if boost and LEVELS.boost is not None:
        candidates.append(LEVELS.boost)
    meeting = [p for p in candidates if p.frequency >= f_required]
    expected = (min(meeting, key=lambda p: p.frequency)
                if meeting else None)
    assert LEVELS.lowest_meeting(f_required, allow_boost=boost) \
        == expected


@settings(deadline=None)
@given(k=st.integers(min_value=-30, max_value=0),
       level=st.integers(min_value=0, max_value=len(LEVELS) - 1))
def test_exact_fit_boundary(k, level):
    """At exactly-fitting cycle counts the level still qualifies; one
    ULP more cycles pushes selection to the next-faster level.

    Power-of-two budgets make ``cycles / budget`` reproduce the
    level's frequency bit-exactly, so this probes the true float
    boundary rather than a safely-distant constant.
    """
    budget = 2.0 ** k
    point = LEVELS.points[level]
    cycles = point.frequency * budget  # exact: scaling by 2**k
    decision = select_level(LEVELS, cycles, budget)
    assert decision.feasible
    assert decision.point == point

    bumped = select_level(LEVELS, math.nextafter(cycles, math.inf),
                          budget)
    if level == len(LEVELS) - 1:
        assert not bumped.feasible  # past nominal: run flat out
    else:
        assert bumped.point == LEVELS.points[level + 1]
        assert bumped.point.frequency > point.frequency


@settings(deadline=None)
@given(budget=budget_st, cycles=cycles_st,
       overhead=st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False))
def test_no_time_left_is_never_feasible(budget, cycles, overhead):
    """Overheads at or beyond the budget force the flat-out fallback."""
    t_slice = budget + overhead
    decision = select_level(LEVELS, cycles, budget, t_slice=t_slice)
    if cycles > 0.0:
        assert not decision.feasible
        assert decision.f_required == math.inf
    assert decision.point == LEVELS.fastest()


# -- the deadline epsilon predicate ----------------------------------

deadline_st = st.floats(min_value=1e-6, max_value=10.0,
                        allow_nan=False, allow_infinity=False)
release_factor_st = st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False, allow_infinity=False)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=-1.0, max_value=0.0, allow_nan=False))
def test_on_time_is_never_missed(deadline, factor, k):
    """finish <= release + deadline can never be flagged missed."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert not deadline_missed(finish, release, deadline)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=2 * TIME_EPS_REL, max_value=1.0,
                   allow_nan=False))
def test_clear_overrun_is_always_missed(deadline, factor, k):
    """Overruns of at least 2 epsilon are always flagged."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert deadline_missed(finish, release, deadline)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=-1e-10, max_value=1e-10,
                   allow_nan=False))
def test_rounding_noise_is_forgiven(deadline, factor, k):
    """Jitter an order of magnitude below epsilon never flags."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert not deadline_missed(finish, release, deadline)
