"""Property-based tests for level selection and the deadline epsilon.

Hand-picked constants can only probe the boundaries someone thought
of; these generate (cycles, budget, margin) triples and whole float
neighborhoods around the exact-fit frontier.  Requires ``hypothesis``
(a dev extra) — skipped cleanly where it is absent.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.dvfs import (  # noqa: E402
    ASIC_VOLTAGES,
    AsicVfModel,
    build_level_table,
    select_level,
)
from repro.units import MHZ, TIME_EPS_REL, deadline_missed  # noqa: E402

#: One table for the whole module — characterization is deterministic.
LEVELS = build_level_table(AsicVfModel.characterize(100 * MHZ),
                           ASIC_VOLTAGES)

cycles_st = st.floats(min_value=0.0, max_value=1e9,
                      allow_nan=False, allow_infinity=False)
budget_st = st.floats(min_value=1e-6, max_value=1.0,
                      allow_nan=False, allow_infinity=False)
margin_st = st.floats(min_value=0.0, max_value=0.5,
                      allow_nan=False, allow_infinity=False)
boost_st = st.booleans()


@settings(deadline=None)
@given(cycles=cycles_st, budgets=st.tuples(budget_st, budget_st),
       margin=margin_st, boost=boost_st)
def test_select_level_monotone_in_budget(cycles, budgets, margin, boost):
    """A looser deadline never selects a faster level."""
    tight, loose = sorted(budgets)
    fast = select_level(LEVELS, cycles, tight, margin_fraction=margin,
                        allow_boost=boost)
    slow = select_level(LEVELS, cycles, loose, margin_fraction=margin,
                        allow_boost=boost)
    assert fast.point.frequency >= slow.point.frequency
    # Feasibility is monotone too: what fits in tight fits in loose.
    if fast.feasible:
        assert slow.feasible


@settings(deadline=None)
@given(cycles=st.tuples(cycles_st, cycles_st), budget=budget_st,
       margin=margin_st, boost=boost_st)
def test_select_level_monotone_in_cycles(cycles, budget, margin, boost):
    """A bigger prediction never selects a slower level."""
    small, large = sorted(cycles)
    a = select_level(LEVELS, small, budget, margin_fraction=margin,
                     allow_boost=boost)
    b = select_level(LEVELS, large, budget, margin_fraction=margin,
                     allow_boost=boost)
    assert b.point.frequency >= a.point.frequency
    if b.feasible:
        assert a.feasible


@settings(deadline=None)
@given(cycles=cycles_st, budget=budget_st, margin=margin_st,
       boost=boost_st)
def test_selected_level_is_minimal(cycles, budget, margin, boost):
    """The selected point is the *slowest* one meeting f_required."""
    decision = select_level(LEVELS, cycles, budget,
                            margin_fraction=margin, allow_boost=boost)
    if not decision.feasible:
        assert decision.point == LEVELS.fastest(allow_boost=boost)
        assert all(p.frequency < decision.f_required for p in LEVELS)
        return
    assert decision.point.frequency >= decision.f_required
    slower = [p for p in LEVELS
              if p.frequency < decision.point.frequency]
    assert all(p.frequency < decision.f_required for p in slower)


@settings(deadline=None)
@given(f_required=st.floats(min_value=0.0, max_value=1e10,
                            allow_nan=False),
       boost=boost_st)
def test_lowest_meeting_matches_brute_force(f_required, boost):
    candidates = list(LEVELS.points)
    if boost and LEVELS.boost is not None:
        candidates.append(LEVELS.boost)
    meeting = [p for p in candidates if p.frequency >= f_required]
    expected = (min(meeting, key=lambda p: p.frequency)
                if meeting else None)
    assert LEVELS.lowest_meeting(f_required, allow_boost=boost) \
        == expected


@settings(deadline=None)
@given(k=st.integers(min_value=-30, max_value=0),
       level=st.integers(min_value=0, max_value=len(LEVELS) - 1))
def test_exact_fit_boundary(k, level):
    """At exactly-fitting cycle counts the level still qualifies; one
    ULP more cycles pushes selection to the next-faster level.

    Power-of-two budgets make ``cycles / budget`` reproduce the
    level's frequency bit-exactly, so this probes the true float
    boundary rather than a safely-distant constant.
    """
    budget = 2.0 ** k
    point = LEVELS.points[level]
    cycles = point.frequency * budget  # exact: scaling by 2**k
    decision = select_level(LEVELS, cycles, budget)
    assert decision.feasible
    assert decision.point == point

    bumped = select_level(LEVELS, math.nextafter(cycles, math.inf),
                          budget)
    if level == len(LEVELS) - 1:
        assert not bumped.feasible  # past nominal: run flat out
    else:
        assert bumped.point == LEVELS.points[level + 1]
        assert bumped.point.frequency > point.frequency


@settings(deadline=None)
@given(budget=budget_st, cycles=cycles_st,
       overhead=st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False))
def test_no_time_left_is_never_feasible(budget, cycles, overhead):
    """Overheads at or beyond the budget force the flat-out fallback."""
    t_slice = budget + overhead
    decision = select_level(LEVELS, cycles, budget, t_slice=t_slice)
    if cycles > 0.0:
        assert not decision.feasible
        assert decision.f_required == math.inf
    assert decision.point == LEVELS.fastest()


# -- the deadline epsilon predicate ----------------------------------

deadline_st = st.floats(min_value=1e-6, max_value=10.0,
                        allow_nan=False, allow_infinity=False)
release_factor_st = st.floats(min_value=0.0, max_value=100.0,
                              allow_nan=False, allow_infinity=False)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=-1.0, max_value=0.0, allow_nan=False))
def test_on_time_is_never_missed(deadline, factor, k):
    """finish <= release + deadline can never be flagged missed."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert not deadline_missed(finish, release, deadline)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=2 * TIME_EPS_REL, max_value=1.0,
                   allow_nan=False))
def test_clear_overrun_is_always_missed(deadline, factor, k):
    """Overruns of at least 2 epsilon are always flagged."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert deadline_missed(finish, release, deadline)


@settings(deadline=None)
@given(deadline=deadline_st, factor=release_factor_st,
       k=st.floats(min_value=-1e-10, max_value=1e-10,
                   allow_nan=False))
def test_rounding_noise_is_forgiven(deadline, factor, k):
    """Jitter an order of magnitude below epsilon never flags."""
    release = deadline * factor
    finish = (release + deadline) + k * deadline
    assert not deadline_missed(finish, release, deadline)


# -- batch kernel equivalence (the vectorized decision plane) ---------

import numpy as np  # noqa: E402

from repro.dvfs import (  # noqa: E402
    FPGA_VOLTAGES,
    FpgaVfModel,
    select_level_batch,
)

#: A second table with a different shape (and a boost point guaranteed
#: by the FPGA voltage ladder differing from the ASIC one), so the
#: batch kernel is exercised over more than one frequency grid.
FPGA_LEVELS = build_level_table(FpgaVfModel(f_nominal=100 * MHZ),
                                FPGA_VOLTAGES)
TABLES = [LEVELS, FPGA_LEVELS]

slice_st = st.floats(min_value=0.0, max_value=0.1,
                     allow_nan=False, allow_infinity=False)
switch_st = st.floats(min_value=0.0, max_value=0.01,
                      allow_nan=False, allow_infinity=False)
table_st = st.integers(min_value=0, max_value=len(TABLES) - 1)


def _assert_batch_matches_scalar(levels, cycles, budgets, margin,
                                 t_slice, t_switch, boost):
    batch = select_level_batch(
        levels, np.array(cycles, dtype=float),
        np.array(budgets, dtype=float), margin_fraction=margin,
        t_slice=t_slice, t_switch=t_switch, allow_boost=boost)
    assert len(batch) == len(cycles)
    for i, (c, b) in enumerate(zip(cycles, budgets)):
        scalar = select_level(levels, c, b, margin_fraction=margin,
                              t_slice=t_slice, t_switch=t_switch,
                              allow_boost=boost)
        rehydrated = batch.decision_at(levels, i)
        assert rehydrated.point == scalar.point, (
            f"job {i}: batch chose {rehydrated.point}, "
            f"scalar {scalar.point}")
        assert rehydrated.feasible == scalar.feasible
        # Bit-identical f_required, not merely close: the engines must
        # agree on the exact float.
        assert (rehydrated.f_required == scalar.f_required
                or (math.isnan(rehydrated.f_required)
                    and math.isnan(scalar.f_required)))


@settings(deadline=None)
@given(table=table_st,
       jobs=st.lists(st.tuples(cycles_st, budget_st),
                     min_size=1, max_size=64),
       margin=margin_st, t_slice=slice_st, t_switch=switch_st,
       boost=boost_st)
def test_batch_equals_scalar_elementwise(table, jobs, margin, t_slice,
                                         t_switch, boost):
    """``select_level_batch`` is the scalar ``select_level`` mapped
    over the array — same point, feasibility, and exact f_required
    for every element, margins/overheads/boost included."""
    cycles = [c for c, _ in jobs]
    budgets = [b for _, b in jobs]
    _assert_batch_matches_scalar(TABLES[table], cycles, budgets,
                                 margin, t_slice, t_switch, boost)


@settings(deadline=None)
@given(table=table_st, budget=budget_st, margin=margin_st,
       overhead=st.floats(min_value=0.0, max_value=2.0,
                          allow_nan=False),
       cycles=st.lists(cycles_st, min_size=1, max_size=16),
       boost=boost_st)
def test_batch_infeasible_fallback_matches(table, budget, margin,
                                           overhead, cycles, boost):
    """When overheads eat the whole budget, every batch element takes
    the same flat-out fallback the scalar path takes."""
    levels = TABLES[table]
    t_slice = budget + overhead
    batch = select_level_batch(
        levels, np.array(cycles), np.full(len(cycles), budget),
        margin_fraction=margin, t_slice=t_slice, allow_boost=boost)
    fastest = levels.fastest(allow_boost=boost)
    for i, c in enumerate(cycles):
        decision = batch.decision_at(levels, i)
        if c > 0.0:
            assert not decision.feasible
            assert decision.f_required == math.inf
        assert decision.point == fastest or decision.feasible


@settings(deadline=None)
@given(k=st.integers(min_value=-30, max_value=0),
       boost=boost_st)
def test_batch_exact_fit_boundary(k, boost):
    """The whole exact-fit frontier in one batch: for every level, the
    exactly-fitting cycle count and its ``nextafter`` bump — the batch
    kernel must place each on the same side of the boundary as the
    scalar path (power-of-two budgets make the division exact)."""
    budget = 2.0 ** k
    cycles = []
    for point in LEVELS.points:
        exact = point.frequency * budget
        cycles.extend([exact, math.nextafter(exact, math.inf)])
    budgets = [budget] * len(cycles)
    _assert_batch_matches_scalar(LEVELS, cycles, budgets, 0.0, 0.0,
                                 0.0, boost)


@settings(deadline=None)
@given(jobs=st.lists(st.tuples(cycles_st, budget_st),
                     min_size=1, max_size=32),
       margin=margin_st)
def test_batch_boost_only_beyond_table(jobs, margin):
    """Boost is selected by the batch kernel exactly when no table
    point meets f_required but the boost point does — never sooner."""
    cycles = np.array([c for c, _ in jobs])
    budgets = np.array([b for _, b in jobs])
    batch = select_level_batch(LEVELS, cycles, budgets,
                               margin_fraction=margin,
                               allow_boost=True)
    arrays = LEVELS.arrays()
    for i in range(len(jobs)):
        decision = batch.decision_at(LEVELS, i)
        if decision.point.is_boost and decision.feasible:
            assert arrays.frequencies[-1] < decision.f_required
            assert arrays.boost_frequency >= decision.f_required
