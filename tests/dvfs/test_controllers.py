"""Controller and episode-runner tests."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    ConstantFrequencyController,
    HistoryController,
    JobActivity,
    OperatingPoint,
    OracleController,
    PidController,
    PredictiveController,
    TableBasedController,
    build_level_table,
)
from repro.runtime import JobRecord, Task, run_episode
from repro.units import DVFS_SWITCH_TIME, MHZ, MS


class FlatEnergyModel:
    """Deterministic test double: E = cycles * V^2 + 1e-3 W leakage."""

    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        vr = point.voltage
        return activity.cycles * 1e-9 * vr * vr + 1e-3 * duration


@pytest.fixture(scope="module")
def levels():
    vf = AsicVfModel.characterize(250 * MHZ)
    return build_level_table(vf, ASIC_VOLTAGES)


def job(index, cycles, predicted=None, slice_cycles=0, coarse=0):
    return JobRecord(
        index=index,
        actual_cycles=cycles,
        activity=JobActivity(cycles=cycles),
        predicted_cycles=predicted,
        slice_cycles=slice_cycles,
        coarse_param=coarse,
    )


TASK = Task("test", deadline=16.7 * MS)


def test_baseline_always_nominal(levels):
    ctrl = ConstantFrequencyController(levels)
    plan = ctrl.plan(job(0, 100), TASK.deadline)
    assert plan.point == levels.nominal
    assert plan.t_slice == 0.0


def test_oracle_picks_lowest_feasible_and_never_misses(levels):
    ctrl = OracleController(levels)
    jobs = [job(i, int(1e6 + 3e5 * i)) for i in range(10)]
    result = run_episode(ctrl, jobs, TASK, FlatEnergyModel())
    assert result.miss_count == 0
    # Small jobs get the slowest level.
    assert result.outcomes[0].voltage == levels.slowest.voltage


def test_oracle_charges_no_switch_time(levels):
    ctrl = OracleController(levels)
    jobs = [job(0, 100_000), job(1, 4_000_000)]  # forces a level change
    result = run_episode(ctrl, jobs, TASK, FlatEnergyModel())
    assert all(o.t_switch == 0.0 for o in result.outcomes)


def test_predictive_requires_prediction(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME)
    with pytest.raises(ValueError, match="no prediction"):
        ctrl.plan(job(0, 100), TASK.deadline)


def test_predictive_uses_margin_and_overheads(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME, margin=0.05)
    f0 = levels.nominal.frequency
    # Predicted to need ~exactly the slowest level without margin;
    # margin+overheads must push the choice one level up.
    slowest_f = levels.slowest.frequency
    cycles = int(slowest_f * (TASK.deadline) * 0.99)
    plan = ctrl.plan(job(0, cycles, predicted=cycles,
                         slice_cycles=int(0.03 * f0 * TASK.deadline)),
                     TASK.deadline)
    assert plan.point.frequency > slowest_f


def test_predictive_slice_time_accounted(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME)
    f0 = levels.nominal.frequency
    slice_cycles = int(f0 * 1 * MS)
    plan = ctrl.plan(job(0, 1000, predicted=1000.0,
                         slice_cycles=slice_cycles), TASK.deadline)
    assert plan.t_slice == pytest.approx(1 * MS, rel=1e-4)


def test_predictive_no_overhead_variant(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME,
                                charge_overheads=False)
    plan = ctrl.plan(job(0, 1000, predicted=1000.0, slice_cycles=10_000),
                     TASK.deadline)
    assert plan.t_slice == 0.0
    assert ctrl.name == "prediction_no_overhead"


def test_predictive_boost_engages_when_budget_too_short(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME, boost=True)
    f0 = levels.nominal.frequency
    # Prediction that cannot be met at nominal after overheads.
    cycles = int(f0 * TASK.deadline * 1.01)
    plan = ctrl.plan(job(0, cycles, predicted=float(cycles)), TASK.deadline)
    assert plan.point.is_boost


def test_predictive_name_covers_all_four_flag_combinations(levels):
    """Regression: ``boost=True, charge_overheads=False`` used to
    collide with the plain no-overhead variant, merging two schemes
    into one row of every summary table."""
    assert PredictiveController(levels, DVFS_SWITCH_TIME).name \
        == "prediction"
    assert PredictiveController(levels, DVFS_SWITCH_TIME,
                                boost=True).name == "prediction_boost"
    assert PredictiveController(levels, DVFS_SWITCH_TIME,
                                charge_overheads=False).name \
        == "prediction_no_overhead"
    both = PredictiveController(levels, DVFS_SWITCH_TIME, boost=True,
                                charge_overheads=False)
    assert both.name == "prediction_boost_no_overhead"
    assert both.boost and not both.charge_overheads
    assert not both.uses_slice  # overhead-free variants drop the slice


def test_table_controller_rejects_empty_training(levels):
    with pytest.raises(ValueError, match="empty training set"):
        TableBasedController.from_training(levels, DVFS_SWITCH_TIME, [])


def test_pid_controller_first_job_nominal_then_adapts(levels):
    ctrl = PidController(levels, DVFS_SWITCH_TIME)
    assert ctrl.plan(job(0, 1000), TASK.deadline).point == levels.nominal
    small = 100_000
    for i in range(10):
        ctrl.observe(job(i, small))
    plan = ctrl.plan(job(11, small), TASK.deadline)
    assert plan.point.frequency < levels.nominal.frequency


def test_pid_controller_reset_clears_history(levels):
    ctrl = PidController(levels, DVFS_SWITCH_TIME)
    ctrl.observe(job(0, 100_000))
    ctrl.reset()
    assert ctrl.plan(job(1, 100), TASK.deadline).point == levels.nominal


def test_history_controller_window(levels):
    ctrl = HistoryController(levels, DVFS_SWITCH_TIME, window=2)
    assert ctrl.plan(job(0, 1), TASK.deadline).point == levels.nominal
    ctrl.observe(job(0, 1_000_000))
    ctrl.observe(job(1, 2_000_000))
    ctrl.observe(job(2, 4_000_000))  # evicts the first observation
    plan = ctrl.plan(job(3, 1), TASK.deadline)
    # Average of last two = 3M cycles + 10% margin.
    expected_f = 3_000_000 * 1.1 / (TASK.deadline - DVFS_SWITCH_TIME)
    assert plan.point == levels.lowest_meeting(expected_f)
    with pytest.raises(ValueError):
        HistoryController(levels, 0.0, window=0)


def test_table_controller_worst_case_per_class(levels):
    training = [job(0, 1_000_000, coarse=1), job(1, 3_000_000, coarse=1),
                job(2, 200_000, coarse=2)]
    ctrl = TableBasedController.from_training(
        levels, DVFS_SWITCH_TIME, training)
    plan_big = ctrl.plan(job(3, 500, coarse=1), TASK.deadline)
    plan_small = ctrl.plan(job(4, 500, coarse=2), TASK.deadline)
    assert plan_big.point.frequency > plan_small.point.frequency
    # Unknown class: conservative nominal.
    assert ctrl.plan(job(5, 1, coarse=99), TASK.deadline).point \
        == levels.nominal


def test_episode_switch_charged_only_on_changes(levels):
    ctrl = OracleController(levels)
    ctrl.charge_overheads = True  # force switch accounting for the test
    jobs = [job(0, 100_000), job(1, 100_000), job(2, 4_000_000)]
    result = run_episode(ctrl, jobs, TASK, FlatEnergyModel(),
                         t_switch=100e-6)
    switches = [o.t_switch for o in result.outcomes]
    assert switches[0] > 0  # leaving the nominal idle point
    assert switches[1] == 0.0  # same level as previous job
    assert switches[2] > 0  # level change


def test_episode_miss_detection(levels):
    ctrl = ConstantFrequencyController(levels)
    too_big = int(levels.nominal.frequency * TASK.deadline * 1.1)
    result = run_episode(ctrl, [job(0, too_big)], TASK, FlatEnergyModel())
    assert result.miss_count == 1
    assert result.miss_rate == 1.0


def test_episode_slice_energy_requires_model(levels):
    ctrl = PredictiveController(levels, DVFS_SWITCH_TIME)
    jobs = [job(0, 1000, predicted=1000.0, slice_cycles=100)]
    with pytest.raises(ValueError, match="slice energy model"):
        run_episode(ctrl, jobs, TASK, FlatEnergyModel())
    result = run_episode(ctrl, jobs, TASK, FlatEnergyModel(),
                         slice_energy_model=FlatEnergyModel())
    assert result.total_energy > 0


def test_episode_normalized_energy(levels):
    jobs = [job(i, 500_000 + 100_000 * i) for i in range(20)]
    baseline = run_episode(ConstantFrequencyController(levels), jobs, TASK,
                           FlatEnergyModel())
    oracle = run_episode(OracleController(levels), jobs, TASK,
                         FlatEnergyModel())
    ratio = oracle.normalized_energy(baseline)
    assert 0.0 < ratio < 1.0  # DVFS saves energy
    with pytest.raises(ValueError, match="job count"):
        oracle.normalized_energy(run_episode(
            ConstantFrequencyController(levels), jobs[:5], TASK,
            FlatEnergyModel()))
