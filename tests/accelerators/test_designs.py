"""Per-design tests: structure, detection coverage, timing bands.

These run each benchmark accelerator on a handful of jobs, so they
exercise the full substrate (IR -> synthesis -> detection -> sim).
"""

import pytest

from repro.accelerators import ALL_DESIGNS, all_designs, get_design
from repro.analysis import detect_counters, detect_fsms, discover_features
from repro.rtl import Simulation, synthesize, tech
from repro.units import MS
from repro.workloads import workload_for

#: Loose bands around Table 4: (area lo/hi um^2, time lo/hi ms).
EXPECTED = {
    "h264": ((400e3, 900e3), (3.0, 13.0)),
    "cjpeg": ((100e3, 260e3), (0.5, 16.0)),
    "djpeg": ((250e3, 550e3), (0.8, 16.0)),
    "md": ((15e3, 60e3), (0.5, 16.69)),
    "stencil": ((5e3, 30e3), (0.8, 16.69)),
    "aes": ((30e3, 90e3), (0.8, 16.69)),
    "sha": ((10e3, 40e3), (0.5, 16.0)),
}


@pytest.fixture(scope="module", params=ALL_DESIGNS)
def design_and_netlist(request):
    design = get_design(request.param)
    module = design.build()
    return design, module, synthesize(module)


def test_registry_rejects_unknown():
    with pytest.raises(KeyError, match="unknown accelerator"):
        get_design("quantum")


def test_all_designs_have_paper_frequencies():
    freqs = {d.name: d.nominal_frequency / 1e6 for d in all_designs()}
    assert freqs == {
        "h264": 250, "cjpeg": 250, "djpeg": 250, "md": 455,
        "stencil": 602, "aes": 500, "sha": 500,
    }


def test_detection_finds_every_fsm(design_and_netlist):
    design, module, netlist = design_and_netlist
    detected = {f.state_net for f in detect_fsms(netlist)}
    expected = {fsm.state_signal for fsm in module.fsms.values()}
    assert expected <= detected


def test_detection_finds_every_counter(design_and_netlist):
    design, module, netlist = design_and_netlist
    detected = {c.net: c.mode for c in detect_counters(netlist)}
    for name, counter in module.counters.items():
        assert detected.get(name) == counter.mode, name


def test_feature_inventory_nonempty(design_and_netlist):
    design, module, netlist = design_and_netlist
    features = discover_features(module, netlist)
    kinds = {spec.kind for spec in features}
    assert "stc" in kinds
    assert "ic" in kinds
    assert "aivs" in kinds
    assert "apvs" in kinds  # every design carries an up counter


def test_area_in_band(design_and_netlist):
    design, module, netlist = design_and_netlist
    (lo, hi), _ = EXPECTED[design.name]
    assert lo <= tech.asic_area(netlist) <= hi


def test_jobs_complete_within_band(design_and_netlist):
    design, module, netlist = design_and_netlist
    _, (lo_ms, hi_ms) = EXPECTED[design.name]
    workload = workload_for(design.name, scale=0.1)
    sim = Simulation(module, track_state_cycles=False)
    for item in workload.test[:10]:
        job = design.encode_job(item)
        sim.reset()
        sim.load(*job.as_pair())
        result = sim.run()
        assert result.finished
        t_ms = result.cycles / design.nominal_frequency / MS
        assert lo_ms <= t_ms <= hi_ms, (design.name, t_ms)


def test_no_job_exceeds_the_60fps_deadline_at_nominal(design_and_netlist):
    """Table 4's premise: the baseline at nominal V/f never misses."""
    design, module, netlist = design_and_netlist
    workload = workload_for(design.name, scale=0.15)
    sim = Simulation(module, track_state_cycles=False)
    for item in workload.test:
        job = design.encode_job(item)
        sim.reset()
        sim.load(*job.as_pair())
        cycles = sim.run().cycles
        assert cycles / design.nominal_frequency < 16.7 * MS


def test_encode_job_is_deterministic(design_and_netlist):
    design, module, netlist = design_and_netlist
    workload = workload_for(design.name, scale=0.1)
    a = design.encode_job(workload.test[0])
    b = design.encode_job(workload.test[0])
    assert a.inputs == b.inputs
    assert {k: list(v) for k, v in a.memories.items()} == \
        {k: list(v) for k, v in b.memories.items()}
    assert a.coarse_param == b.coarse_param


def _tiny_item(design, item):
    """Shrink a workload item so the no-fast-forward run stays cheap."""
    from dataclasses import replace

    name = design.name
    if name == "h264":
        return replace(item, mbs=item.mbs[:3])
    if name in ("cjpeg", "djpeg"):
        return replace(item, strips=item.strips[:2], height_blocks=2)
    if name == "md":
        return replace(item, neighbor_counts=item.neighbor_counts[:6])
    if name == "stencil":
        return replace(item, rows=20, cols=24)
    return replace(item, n_bytes=20_000)  # aes / sha


def test_fast_forward_exact_on_real_designs(design_and_netlist):
    """The simulator optimization is exact on every benchmark design."""
    design, module, netlist = design_and_netlist
    workload = workload_for(design.name, scale=0.1)
    job = design.encode_job(_tiny_item(design, workload.test[0]))
    results = []
    for ff in (True, False):
        sim = Simulation(module, fast_forward=ff)
        sim.load(*job.as_pair())
        results.append(sim.run(max_cycles=2_000_000))
    assert results[0].finished and results[1].finished
    assert results[0].cycles == results[1].cycles
    assert results[0].state_cycles == results[1].state_cycles
