"""Episode-runner tests: periodic releases, carry-over, aggregation."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    Controller,
    JobActivity,
    LevelTable,
    OperatingPoint,
    OracleController,
    Plan,
    build_level_table,
)
from repro.runtime import (
    JobRecord,
    Task,
    average_summaries,
    format_table,
    run_episode,
    strict_checks_enabled,
    switch_window_energy,
    summarize,
)
from repro.units import MHZ, MS


class FlatEnergyModel:
    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        return activity.cycles * 1e-9 * point.voltage ** 2 + 1e-3 * duration


class FixedController(Controller):
    """Always picks a given point; exposes the budgets it was given."""

    def __init__(self, levels, point):
        super().__init__("fixed", levels, t_switch=0.0)
        self.point = point
        self.budgets = []

    def plan(self, job, budget):
        self.budgets.append(budget)
        return Plan(point=self.point)


@pytest.fixture(scope="module")
def levels():
    return build_level_table(AsicVfModel.characterize(100 * MHZ),
                             ASIC_VOLTAGES)


def job(index, cycles):
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles))


TASK = Task("t", deadline=10 * MS)


def test_job_record_validation():
    with pytest.raises(ValueError, match="at least one cycle"):
        job(0, 0)
    with pytest.raises(ValueError, match="negative"):
        JobRecord(index=0, actual_cycles=1,
                  activity=JobActivity(cycles=1), slice_cycles=-1)
    with pytest.raises(ValueError, match="deadline"):
        Task("t", deadline=0.0)


def test_periodic_release_full_budget_when_on_time(levels):
    ctrl = FixedController(levels, levels.nominal)
    small = int(levels.nominal.frequency * 1 * MS)  # 1ms jobs
    run_episode(ctrl, [job(i, small) for i in range(4)], TASK,
                FlatEnergyModel())
    assert ctrl.budgets == pytest.approx([10 * MS] * 4)


def test_overrun_squeezes_next_budget(levels):
    """A job that overruns its period shrinks the next job's budget —
    the carry-over that makes under-prediction expensive."""
    slowest = levels.slowest
    ctrl = FixedController(levels, slowest)
    # 9ms at nominal => ~27ms at the slowest level: overruns by ~17ms.
    big = int(levels.nominal.frequency * 9 * MS)
    tiny = int(levels.nominal.frequency * 0.1 * MS)
    result = run_episode(ctrl, [job(0, big), job(1, tiny)], TASK,
                         FlatEnergyModel())
    assert result.outcomes[0].missed
    assert ctrl.budgets[0] == 10 * MS
    assert ctrl.budgets[1] < 5 * MS  # squeezed by the overrun


def test_overrun_recovery_restores_budget(levels):
    ctrl = FixedController(levels, levels.nominal)
    over = int(levels.nominal.frequency * 12 * MS)   # misses by 2ms
    small = int(levels.nominal.frequency * 1 * MS)
    run_episode(ctrl, [job(0, over), job(1, small), job(2, small)],
                TASK, FlatEnergyModel())
    assert ctrl.budgets[1] == pytest.approx(8 * MS)   # 2ms late start
    assert ctrl.budgets[2] == pytest.approx(10 * MS)  # recovered


def test_oracle_with_carryover_still_never_misses(levels):
    ctrl = OracleController(levels)
    jobs = [job(i, int(levels.nominal.frequency * (2 + 3 * (i % 3)) * MS))
            for i in range(12)]
    result = run_episode(ctrl, jobs, TASK, FlatEnergyModel())
    assert result.miss_count == 0


def test_exact_fit_jobs_are_not_spuriously_missed():
    """Regression: jobs sized to fill their period exactly used to pick
    up a miss around job 6 — accumulated float rounding in the running
    wall clock pushed the finish a few ULPs past ``release + deadline``.
    The shared epsilon predicate absorbs exactly that slop."""
    deadline = 10 * MS
    cycles = 999_900
    table = LevelTable([OperatingPoint(1.0, cycles / deadline)])
    result = run_episode(OracleController(table),
                         [job(i, cycles) for i in range(8)],
                         Task("exact", deadline=deadline),
                         FlatEnergyModel())
    assert result.miss_count == 0
    # The fit really is exact: every budget is fully consumed.
    for o in result.outcomes:
        assert o.t_exec == pytest.approx(deadline, rel=1e-12)


def test_switch_window_charges_leakage(levels):
    ctrl = FixedController(levels, levels.slowest)
    result = run_episode(ctrl, [job(0, 200_000), job(1, 200_000)], TASK,
                         FlatEnergyModel(), t_switch=100e-6)
    first, second = result.outcomes
    # Job 0 leaves the nominal idle point: it pays the switch window
    # and the window's leakage (FlatEnergyModel leaks 1e-3 W flat).
    assert first.t_switch == 100e-6
    assert second.t_switch == 0.0
    v = levels.slowest.voltage
    expected = 200_000 * 1e-9 * v * v + 1e-3 * (first.t_exec + 100e-6)
    assert first.energy == pytest.approx(expected, rel=1e-12)
    assert first.energy - second.energy == pytest.approx(1e-3 * 100e-6,
                                                         rel=1e-9)


def test_switch_window_energy_helper(levels):
    model = FlatEnergyModel()
    assert switch_window_energy(model, levels.nominal, 0.0) == 0.0
    assert switch_window_energy(model, levels.nominal, -1.0) == 0.0
    assert switch_window_energy(model, levels.nominal, 2e-4) \
        == pytest.approx(1e-3 * 2e-4)


def test_strict_mode_accepts_a_clean_episode(levels):
    jobs = [job(i, int(levels.nominal.frequency * (2 + (i % 3)) * MS))
            for i in range(6)]
    result = run_episode(OracleController(levels), jobs, TASK,
                         FlatEnergyModel(), strict=True)
    assert result.n_jobs == 6


def test_strict_mode_env_toggle(monkeypatch):
    monkeypatch.delenv("REPRO_CHECK", raising=False)
    assert not strict_checks_enabled()
    for value in ("1", "true", "STRICT"):
        monkeypatch.setenv("REPRO_CHECK", value)
        assert strict_checks_enabled()
    monkeypatch.setenv("REPRO_CHECK", "0")
    assert not strict_checks_enabled()


def test_summaries_and_formatting(levels):
    from repro.dvfs import ConstantFrequencyController
    jobs = [job(i, 100_000 + 50_000 * i) for i in range(6)]
    base = run_episode(ConstantFrequencyController(levels), jobs, TASK,
                       FlatEnergyModel())
    oracle = run_episode(OracleController(levels), jobs, TASK,
                         FlatEnergyModel())
    s1 = summarize("bench1", oracle, base)
    s2 = summarize("bench2", oracle, base)
    assert s1.energy_savings_pct > 0
    avg = average_summaries([s1, s2], "oracle")
    assert avg.benchmark == "average"
    text = format_table([s1, s2, avg])
    assert "bench1" in text and "oracle:energy%" in text
    with pytest.raises(ValueError, match="no summaries"):
        average_summaries([s1], "nope")
