"""Trace reconstruction and SoC aggregation tests."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    ConstantFrequencyController,
    JobActivity,
    OracleController,
    build_level_table,
)
from repro.runtime import (
    AcceleratorStream,
    JobRecord,
    Task,
    render_trace,
    run_episode,
    run_soc,
    sparkline,
    trace_episode,
)
from repro.units import MHZ, MS


class FlatEnergyModel:
    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        return activity.cycles * 1e-9 * point.voltage ** 2 + 1e-3 * duration


@pytest.fixture(scope="module")
def levels():
    return build_level_table(AsicVfModel.characterize(200 * MHZ),
                             ASIC_VOLTAGES)


def job(index, cycles):
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles))


TASK = Task("t", deadline=10 * MS)


def make_episode(levels, cycles_list):
    controller = OracleController(levels)
    return run_episode(controller,
                       [job(i, c) for i, c in enumerate(cycles_list)],
                       TASK, FlatEnergyModel())


def test_trace_reconstructs_periodic_releases(levels):
    small = int(levels.nominal.frequency * 1 * MS)
    episode = make_episode(levels, [small] * 4)
    points = trace_episode(episode)
    for i, p in enumerate(points):
        assert p.release == pytest.approx(i * TASK.deadline)
        assert p.start == pytest.approx(p.release)
        assert p.finish <= p.release + TASK.deadline + 1e-12
        assert not p.missed


def test_trace_shows_carryover_on_overrun(levels):
    over = int(levels.nominal.frequency * 12 * MS)  # misses by 2ms
    small = int(levels.nominal.frequency * 1 * MS)
    episode = run_episode(ConstantFrequencyController(levels),
                          [job(0, over), job(1, small)], TASK,
                          FlatEnergyModel())
    points = trace_episode(episode)
    assert points[0].missed
    assert points[1].start > points[1].release  # delayed by the overrun


def test_queued_equals_carryover_delay(levels):
    """``queued`` is exactly the predecessor's overrun carried over."""
    over = int(levels.nominal.frequency * 12 * MS)  # 2 ms past deadline
    small = int(levels.nominal.frequency * 1 * MS)
    episode = run_episode(ConstantFrequencyController(levels),
                          [job(0, over), job(1, small), job(2, small)],
                          TASK, FlatEnergyModel())
    points = trace_episode(episode)
    assert points[0].queued == 0.0  # accelerator idle at release
    overrun = points[0].finish - (points[0].release + TASK.deadline)
    assert overrun == pytest.approx(2 * MS)
    assert points[1].queued == pytest.approx(overrun)
    assert points[2].queued == 0.0  # job 1 was short; carry-over gone


def test_trace_consumes_episode_timeline(levels):
    """The trace is read off JobOutcome, not re-derived — identical
    release/start/finish, and slack agrees with the miss flag."""
    over = int(levels.nominal.frequency * 12 * MS)
    small = int(levels.nominal.frequency * 1 * MS)
    episode = run_episode(ConstantFrequencyController(levels),
                          [job(0, over), job(1, small)], TASK,
                          FlatEnergyModel())
    points = trace_episode(episode)
    for point, outcome in zip(points, episode.outcomes):
        assert point.release == outcome.release
        assert point.start == outcome.start
        assert point.finish == outcome.finish
        assert (point.slack < 0) == outcome.missed
        assert point.slack == pytest.approx(
            point.release + TASK.deadline - point.finish)


def test_sparkline_properties():
    assert sparkline([]) == ""
    assert sparkline([5.0, 5.0, 5.0]) == "▁▁▁"
    line = sparkline([0, 1, 2, 3], width=4)
    assert len(line) == 4
    assert line[0] == "▁" and line[-1] == "█"
    # Long series downsample to the requested width.
    assert len(sparkline(list(range(500)), width=40)) == 40


def test_render_trace_contains_summary(levels):
    small = int(levels.nominal.frequency * 2 * MS)
    episode = make_episode(levels, [small] * 6)
    text = render_trace(episode, head=3)
    assert "trace: oracle" in text
    assert text.count("ms") > 3
    assert "MISS" not in text


def test_soc_aggregation(levels):
    small = int(levels.nominal.frequency * 1 * MS)
    streams = [
        AcceleratorStream(
            name=name,
            controller=OracleController(levels),
            jobs=[job(i, small * (k + 1)) for i in range(5)],
            task=TASK,
            energy_model=FlatEnergyModel(),
        )
        for k, name in enumerate(("decode", "filter"))
    ]
    result = run_soc(streams)
    assert set(result.episodes) == {"decode", "filter"}
    assert result.total_energy == pytest.approx(
        sum(e.total_energy for e in result.episodes.values()))
    assert result.total_misses == 0
    assert result.worst_miss_rate == 0.0
    profile = result.frame_power()
    assert len(profile) == 5
    assert result.peak_power >= result.average_power > 0


def test_soc_rejects_duplicate_names(levels):
    stream = AcceleratorStream(
        name="x", controller=OracleController(levels),
        jobs=[job(0, 1000)], task=TASK, energy_model=FlatEnergyModel(),
    )
    with pytest.raises(ValueError, match="unique"):
        run_soc([stream, stream])


def test_soc_dvfs_cuts_peak_power(levels):
    """The chip-level story: per-job DVFS flattens the power profile."""
    cycles = [int(levels.nominal.frequency * (1 + 2 * (i % 3)) * MS)
              for i in range(9)]
    jobs_list = [job(i, c) for i, c in enumerate(cycles)]

    def soc_with(controller_factory):
        return run_soc([AcceleratorStream(
            name="a", controller=controller_factory(),
            jobs=jobs_list, task=TASK, energy_model=FlatEnergyModel(),
        )])

    base = soc_with(lambda: ConstantFrequencyController(levels))
    dvfs = soc_with(lambda: OracleController(levels))
    assert dvfs.peak_power < base.peak_power
    assert dvfs.normalized_energy(base) < 1.0
