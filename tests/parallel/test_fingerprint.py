"""Tests for cache-key fingerprints (``repro.parallel.fingerprint``)."""

import numpy as np
import pytest

from repro.flow import FlowConfig
from repro.parallel import (
    code_version,
    combine_fingerprints,
    design_hash,
    flow_config_fingerprint,
    jobs_fingerprint,
    stable_hash,
    workload_fingerprint,
)
from tests.conftest import build_toy


def test_stable_hash_is_deterministic():
    value = {"a": [1, 2.5, "x"], "b": (True, None)}
    assert stable_hash(value) == stable_hash(value)
    assert stable_hash(value) == stable_hash(
        {"b": (True, None), "a": [1, 2.5, "x"]})  # dict order-free


def test_stable_hash_distinguishes_types():
    # Type-tagged: equal-ish Python values must not collide.
    digests = {stable_hash(v) for v in (1, 1.0, "1", True, [1], (1,))}
    assert len(digests) == 6


def test_stable_hash_int_list_fast_path_matches_content():
    # >64 all-int lists take the int64 vector path; a one-word change
    # must still change the digest.
    words = list(range(200))
    changed = list(words)
    changed[137] += 1
    assert stable_hash(words) != stable_hash(changed)
    huge = list(words)
    huge[0] = 1 << 80  # overflow fallback: per-item hashing
    assert stable_hash(huge) != stable_hash(words)


def test_stable_hash_rejects_opaque_objects():
    with pytest.raises(TypeError, match="fingerprint"):
        stable_hash(object())


def test_design_hash_stable_and_structure_sensitive():
    assert design_hash(build_toy()) == design_hash(build_toy())
    assert design_hash(build_toy()) != design_hash(
        build_toy(with_datapath=False))


def test_jobs_fingerprint_tracks_content():
    jobs = [({"n_items": 3}, {"items": [1, 2, 3]})]
    same = [({"n_items": 3}, {"items": [1, 2, 3]})]
    other = [({"n_items": 3}, {"items": [1, 2, 4]})]
    assert jobs_fingerprint(jobs) == jobs_fingerprint(same)
    assert jobs_fingerprint(jobs) != jobs_fingerprint(other)
    assert jobs_fingerprint(jobs) != jobs_fingerprint(jobs + same)


def test_flow_config_fingerprint_covers_every_knob():
    base = FlowConfig()
    assert flow_config_fingerprint(base) == \
        flow_config_fingerprint(FlowConfig())
    import dataclasses
    for field in dataclasses.fields(FlowConfig):
        current = getattr(base, field.name)
        if isinstance(current, bool):
            changed = FlowConfig(**{field.name: not current})
        elif current is None:
            changed = FlowConfig(**{field.name: 123.0})
        else:
            changed = FlowConfig(**{field.name: current + 1})
        assert flow_config_fingerprint(changed) != \
            flow_config_fingerprint(base), field.name


def test_workload_and_code_version_parts():
    assert workload_fingerprint("sha", 0.1) == \
        workload_fingerprint("sha", 0.1)
    assert workload_fingerprint("sha", 0.1) != \
        workload_fingerprint("sha", 0.2)
    assert workload_fingerprint("sha", 0.1) != \
        workload_fingerprint("aes", 0.1)
    assert "schema" in code_version()


def test_combine_fingerprints_sensitive_to_parts_and_order():
    assert combine_fingerprints("a", "b") == combine_fingerprints("a", "b")
    assert combine_fingerprints("a", "b") != combine_fingerprints("b", "a")
    assert combine_fingerprints("a") != combine_fingerprints("a", "")


def test_ndarray_hashing_covers_dtype_and_shape():
    a = np.arange(6, dtype=np.int64)
    assert stable_hash(a) == stable_hash(a.copy())
    assert stable_hash(a) != stable_hash(a.astype(np.float64))
    assert stable_hash(a) != stable_hash(a.reshape(2, 3))
