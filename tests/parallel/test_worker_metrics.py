"""Worker telemetry survives the pool: ship-back, merge, drop count."""

from repro.obs import get_observer, session
from repro.obs import runctx
from repro.obs.merge import (
    DROPPED_COUNTER,
    DROPPED_TIMESERIES,
    absorb_snapshots,
    activate_worker,
    worker_snapshot,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.timeseries import TimeSeriesRegistry
from repro.parallel import pmap
from tests.parallel.test_parallel_flow import _toy_record_setup


def _observed_square(x):
    obs = get_observer()
    obs.metrics.inc("worker.calls")
    obs.metrics.observe("worker.value", float(x))
    return x * x


def test_worker_metrics_merge_back_into_parent():
    with session(command="t") as obs:
        out = pmap(_observed_square, list(range(8)), jobs=4)
    assert out == [x * x for x in range(8)]
    assert obs.metrics.counters["worker.calls"] == 8.0
    assert obs.metrics.histograms["worker.value"].count == 8
    assert DROPPED_COUNTER not in obs.metrics.counters


def test_counters_identical_serial_vs_parallel():
    def run(jobs):
        with session(command="t") as obs:
            pmap(_observed_square, list(range(12)), jobs=jobs)
        return {name: value
                for name, value in obs.metrics.counters.items()
                if name.startswith("worker.")}

    assert run(1) == run(4) == {"worker.calls": 12.0}


def test_sim_counters_survive_parallel_record_jobs():
    # The regression this PR exists for: sim.* kernel counters used to
    # die with the pool workers, so --jobs 4 undercounted cycles.
    from repro.analysis import record_jobs

    module, feature_set, jobs = _toy_record_setup()

    def sim_counters(workers):
        with session(command="t") as obs:
            record_jobs(module, feature_set, jobs, workers=workers)
        return {name: value
                for name, value in obs.metrics.counters.items()
                if name.endswith((".runs", ".cycles", ".ff_jumps"))}

    serial = sim_counters(1)
    parallel = sim_counters(4)
    assert serial  # the kernel actually emitted something
    assert serial == parallel


def test_absorb_counts_dropped_snapshots():
    with session(command="t") as obs:
        absorb_snapshots([
            None,
            {"counters": {"x": 1.0}, "gauges": {}, "histograms": {}},
            None,
        ])
    assert obs.metrics.counters[DROPPED_COUNTER] == 2.0
    assert obs.metrics.counters["x"] == 1.0
    absorb_snapshots([None])  # no observer installed: a silent no-op


def test_worker_snapshot_ships_deltas_and_resets():
    previous = runctx._CURRENT
    try:
        activate_worker()
        obs = get_observer()
        assert obs is not previous
        assert obs.sink is None  # file-less: never writes artifacts
        obs.metrics.inc("a")
        obs.timeseries.observe("lat", 0.05, 2.0)
        first = worker_snapshot()
        assert first["metrics"]["counters"] == {"a": 1.0}
        assert first["timeseries"] is not None
        second = worker_snapshot()  # fresh registry: only new deltas
        assert second["metrics"]["counters"] == {}
        assert second["timeseries"] is None  # no windowed samples
    finally:
        runctx._CURRENT = previous


def _observed_window(x):
    obs = get_observer()
    obs.timeseries.observe("w.lat", 0.01 * x, float(x))
    return x


def test_worker_timeseries_merge_back_into_parent():
    with session(command="t") as obs:
        out = pmap(_observed_window, list(range(8)), jobs=4)
        assert out == list(range(8))
        assert "w.lat" in obs.timeseries.series_names()
        shipped = sum(cell.count for _, cell
                      in obs.timeseries.windows("w.lat"))
    assert shipped == 8
    assert DROPPED_TIMESERIES not in obs.metrics.counters


def test_absorb_drops_mismatched_window_series():
    # A worker bucketed its windows differently than the parent: its
    # series cannot merge cell-for-cell, so it is counted, not folded.
    with session(command="t") as obs:
        foreign = TimeSeriesRegistry(
            window_s=obs.timeseries.window_s * 2.0)
        foreign.observe("x", 0.0, 1.0)
        absorb_snapshots([{"metrics": MetricsRegistry().to_dict(),
                           "timeseries": foreign.to_dict()}])
        assert obs.metrics.counters[DROPPED_TIMESERIES] == 1.0
        assert "x" not in obs.timeseries.series_names()


def test_worker_snapshot_without_observer_is_none():
    previous = runctx._CURRENT
    try:
        runctx._deactivate()
        assert worker_snapshot() is None
    finally:
        runctx._CURRENT = previous
