"""End-to-end tests: parallel flow bit-exactness and warm-cache reruns."""

import json

import numpy as np
import pytest

from repro.accelerators import get_design
from repro.analysis import discover_features, record_jobs
from repro.experiments import bundle_for, clear_bundle_cache
from repro.flow import FlowConfig, generate_predictor
from repro.model import lasso_path
from repro.obs import session
from repro.parallel import ArtifactCache, set_cache
from repro.rtl import compile_module, synthesize
from repro.workloads import workload_for
from tests.conftest import ToyDesign, build_toy, toy_workload


def _toy_record_setup():
    design = ToyDesign()
    module = design.build()
    feature_set = discover_features(module, synthesize(module))
    jobs = [design.encode_job(items).as_pair()
            for items in toy_workload(24, seed=7)]
    return compile_module(module), feature_set, jobs


def _design_record_setup(name, scale):
    design = get_design(name)
    module = design.build()
    feature_set = discover_features(module, synthesize(module))
    jobs = [design.encode_job(item).as_pair()
            for item in workload_for(name, scale=scale).train]
    return compile_module(module), feature_set, jobs


def _assert_matrices_equal(a, b):
    assert np.array_equal(a.x, b.x)
    assert np.array_equal(a.cycles, b.cycles)
    assert a.feature_set.names() == b.feature_set.names()


def test_record_jobs_parallel_is_bit_identical_toy():
    module, feature_set, jobs = _toy_record_setup()
    serial = record_jobs(module, feature_set, jobs, workers=1)
    parallel = record_jobs(module, feature_set, jobs, workers=4)
    _assert_matrices_equal(serial, parallel)


def test_record_jobs_parallel_is_bit_identical_real_design():
    module, feature_set, jobs = _design_record_setup("sha", 0.05)
    serial = record_jobs(module, feature_set, jobs, workers=1)
    parallel = record_jobs(module, feature_set, jobs, workers=4)
    _assert_matrices_equal(serial, parallel)


def test_record_jobs_error_names_job_and_inputs():
    module, feature_set, jobs = _toy_record_setup()
    with pytest.raises(RuntimeError,
                       match=r"job 0 did not finish within 2 cycles"):
        record_jobs(module, feature_set, jobs, max_cycles=2)
    # The message also summarizes the failing job's inputs.
    with pytest.raises(RuntimeError, match=r"n_items=\d+.*items\[\d+ words\]"):
        record_jobs(module, feature_set, jobs, max_cycles=2)


def test_lasso_path_parallel_matches_serial():
    module, feature_set, jobs = _toy_record_setup()
    matrix = record_jobs(module, feature_set, jobs)
    assert lasso_path(matrix, workers=1) == lasso_path(matrix, workers=3)


def test_feature_matrix_cache_hit_is_identical(tmp_path):
    cache = set_cache(ArtifactCache(tmp_path))
    design = ToyDesign()
    train = toy_workload(24, seed=7)
    cold = generate_predictor(design, train, FlowConfig(gamma=1e-4))
    assert cache.stats.by_kind.get("feature_matrix.miss") == 1
    assert cache.stats.by_kind.get("feature_matrix.put") == 1
    with session(command="warm") as obs:
        warm = generate_predictor(design, train, FlowConfig(gamma=1e-4))
        counters = dict(obs.metrics.counters)
        stages = {s.name for s in obs.tracer.spans}
    assert cache.stats.by_kind.get("feature_matrix.hit") == 1
    assert counters.get("flow.record.cached") == 1
    assert "record" not in stages  # warm rerun skips simulation
    _assert_matrices_equal(cold.train_matrix, warm.train_matrix)
    assert warm.model.predictor.selected_indices == \
        cold.model.predictor.selected_indices


def test_feature_matrix_cache_invalidates_on_changes(tmp_path):
    cache = set_cache(ArtifactCache(tmp_path))
    design = ToyDesign()
    generate_predictor(design, toy_workload(24, seed=7),
                       FlowConfig(gamma=1e-4))
    # Different workload content -> different key -> miss, not a hit.
    generate_predictor(design, toy_workload(24, seed=8),
                       FlowConfig(gamma=1e-4))
    assert cache.stats.by_kind.get("feature_matrix.miss") == 2
    assert cache.stats.by_kind.get("feature_matrix.hit") is None
    # A different design structure also misses.
    other = ToyDesign()
    other._module = build_toy(with_datapath=False)
    generate_predictor(other, toy_workload(24, seed=7),
                       FlowConfig(gamma=1e-4))
    assert cache.stats.by_kind.get("feature_matrix.miss") == 3


def test_bundle_cache_keys_on_flow_config():
    # Regression: bundles used to be keyed (name, scale) only, so a
    # second call with a different FlowConfig silently reused the first
    # bundle.
    clear_bundle_cache()
    base = bundle_for("sha", 0.05, FlowConfig(gamma=1e-4))
    other = bundle_for("sha", 0.05, FlowConfig(gamma=1e-3))
    again = bundle_for("sha", 0.05, FlowConfig(gamma=1e-4))
    assert base is not other
    assert base is again
    assert base.package.gamma != other.package.gamma


def test_bundle_disk_cache_warm_process(tmp_path):
    cache = set_cache(ArtifactCache(tmp_path))
    clear_bundle_cache()
    cold = bundle_for("sha", 0.05, FlowConfig(gamma=1e-4))
    clear_bundle_cache()  # simulate a fresh process
    with session(command="warm") as obs:
        warm = bundle_for("sha", 0.05, FlowConfig(gamma=1e-4))
        counters = dict(obs.metrics.counters)
    assert warm is not cold
    assert counters.get("flow.bundle.cached") == 1
    assert cache.stats.by_kind.get("bundle.hit") == 1
    assert np.array_equal(warm.package.train_matrix.cycles,
                          cold.package.train_matrix.cycles)
    # The thawed bundle is fully usable (slice still simulates).
    job = warm.workload.test[0]
    predicted, cycles = warm.package.run_slice(
        warm.design.encode_job(job))
    assert cycles > 0


def test_cli_cold_then_warm_run(tmp_path, capsys):
    from repro.cli import main

    cache_dir = tmp_path / "cache"
    cold_dir = tmp_path / "cold"
    warm_dir = tmp_path / "warm"
    assert main(["experiment", "fig2", "--scale", "0.05",
                 "--jobs", "2", "--cache-dir", str(cache_dir),
                 "--run-dir", str(cold_dir)]) == 0
    clear_bundle_cache()  # the CLI process would normally exit here
    assert main(["experiment", "fig2", "--scale", "0.05",
                 "--jobs", "2", "--cache-dir", str(cache_dir),
                 "--run-dir", str(warm_dir)]) == 0
    out = capsys.readouterr().out
    assert "1 hit(s)" in out
    cold = json.loads((cold_dir / "manifest.json").read_text())
    warm = json.loads((warm_dir / "manifest.json").read_text())
    cold_stages = {s["name"] for s in cold["stages"]}
    warm_stages = {s["name"] for s in warm["stages"]}
    assert "record" in cold_stages and "record.pmap" in cold_stages
    assert "record" not in warm_stages  # no simulation on the warm run
    assert warm["metrics"]["counters"]["cache.hit"] >= 1
    assert cold["metrics"]["counters"]["pool.tasks"] > 0
