"""Tests for the process-pool execution layer (``repro.parallel.pool``)."""

import pytest

from repro.obs import session
from repro.parallel import (
    get_default_jobs,
    pmap,
    resolve_jobs,
    set_default_jobs,
)
from repro.parallel.pool import balanced_chunks


def _square(x):
    return x * x


def _boom(x):
    if x == 3:
        raise ValueError(f"boom on {x}")
    return x


def _nested(x):
    # A worker that itself calls pmap: must degrade to serial (daemonic
    # workers cannot fork grandchildren) and still return exact results.
    return sum(pmap(_square, range(x), jobs=4))


def test_pmap_preserves_input_order():
    items = list(range(37))
    assert pmap(_square, items, jobs=4) == [x * x for x in items]


def test_parallel_matches_serial():
    items = list(range(100, 0, -7))
    assert pmap(_square, items, jobs=4) == pmap(_square, items, jobs=1)


def test_chunk_size_one_still_ordered():
    items = list(range(23))
    assert pmap(_square, items, jobs=3, chunk_size=1) == \
        [x * x for x in items]


def test_serial_path_accepts_lambdas():
    # jobs=1 never pickles, so unpicklable callables are fine.
    assert pmap(lambda x: x + 1, [1, 2, 3], jobs=1) == [2, 3, 4]


def test_exceptions_propagate_from_workers():
    with pytest.raises(ValueError, match="boom on 3"):
        pmap(_boom, range(6), jobs=2)


def test_nested_pmap_degrades_to_serial():
    expected = [sum(y * y for y in range(x)) for x in [3, 5, 8]]
    assert pmap(_nested, [3, 5, 8], jobs=2) == expected


def test_default_jobs_from_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "6")
    assert get_default_jobs() == 6
    assert resolve_jobs(None) == 6
    assert resolve_jobs(2) == 2


def test_default_jobs_without_env_is_serial():
    assert get_default_jobs() == 1
    assert resolve_jobs() == 1


def test_set_default_jobs_overrides_env(monkeypatch):
    monkeypatch.setenv("REPRO_JOBS", "6")
    set_default_jobs(3)
    assert get_default_jobs() == 3


def test_invalid_jobs_rejected(monkeypatch):
    with pytest.raises(ValueError):
        set_default_jobs(0)
    with pytest.raises(ValueError):
        resolve_jobs(0)
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ValueError):
        get_default_jobs()
    monkeypatch.setenv("REPRO_JOBS", "-2")
    with pytest.raises(ValueError):
        get_default_jobs()


def test_pmap_emits_pool_metrics():
    with session(command="pmap-test") as obs:
        pmap(_square, range(10), jobs=2, label="sq")
        counters = obs.metrics.counters
        assert counters["pool.maps"] == 1
        assert counters["pool.tasks"] == 10
        assert counters["pool.tasks.sq"] == 10
        assert obs.metrics.gauges["pool.workers"] == 2
        assert 0.0 < obs.metrics.gauges["pool.utilization"] <= 1.0


def test_pmap_empty_and_singleton():
    assert pmap(_square, [], jobs=4) == []
    assert pmap(_square, [7], jobs=4) == [49]


WORKERS = 4


@pytest.mark.parametrize("n", [0, 1, WORKERS - 1, WORKERS + 1,
                               WORKERS, 3 * WORKERS + 2])
def test_balanced_chunks_invariants(n):
    """The degenerate-n regression: for every n — including n smaller
    than the worker count — chunks are non-empty, contiguous, within
    one item of each other, and concatenate back to the input."""
    items = list(range(n))
    chunks = balanced_chunks(items, WORKERS)
    assert [x for chunk in chunks for x in chunk] == items
    assert len(chunks) == min(n, WORKERS)
    assert all(chunk for chunk in chunks)
    if chunks:
        sizes = [len(chunk) for chunk in chunks]
        assert max(sizes) - min(sizes) <= 1


def test_balanced_chunks_validates():
    with pytest.raises(ValueError, match="n_chunks"):
        balanced_chunks([1, 2], 0)
    assert balanced_chunks([], 5) == []
    assert balanced_chunks([1], 5) == [[1]]


@pytest.mark.parametrize("n", [0, 1, WORKERS - 1, WORKERS + 1])
def test_pmap_degenerate_sizes_match_serial(n):
    items = list(range(n))
    assert pmap(_square, items, jobs=WORKERS) == \
        pmap(_square, items, jobs=1)
