"""Tests for the persistent artifact cache (``repro.parallel.cache``)."""

import os

import numpy as np
import pytest

from repro.obs import session
from repro.parallel import ArtifactCache, get_cache, set_cache


def test_roundtrip_returns_equal_artifact(tmp_path):
    cache = ArtifactCache(tmp_path)
    artifact = {"x": np.arange(12).reshape(3, 4), "meta": ("sha", 0.1)}
    cache.put("feature_matrix", "ab" * 32, artifact)
    loaded = cache.get("feature_matrix", "ab" * 32)
    assert loaded["meta"] == artifact["meta"]
    assert np.array_equal(loaded["x"], artifact["x"])
    assert cache.stats.hits == 1 and cache.stats.puts == 1


def test_miss_on_absent_key(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.get("bundle", "00" * 32) is None
    assert cache.stats.misses == 1
    assert cache.stats.hit_rate == 0.0
    assert not cache.has("bundle", "00" * 32)


def test_has_does_not_touch_stats(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("bundle", "cd" * 32, [1, 2, 3])
    assert cache.has("bundle", "cd" * 32)
    assert cache.stats.hits == 0 and cache.stats.misses == 0


def test_corrupt_entry_is_dropped_and_counted_as_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    path = cache.put("bundle", "ef" * 32, {"ok": True})
    path.write_bytes(b"not a pickle")
    assert cache.get("bundle", "ef" * 32) is None
    assert cache.stats.errors == 1 and cache.stats.misses == 1
    assert not path.exists()  # bad entry removed, next put is clean


def test_lru_eviction_over_max_bytes(tmp_path):
    blob = b"x" * 4096
    cache = ArtifactCache(tmp_path)  # no limit while seeding
    keys = [f"{i:02d}" * 32 for i in range(6)]
    paths = [cache.put("bundle", key, blob) for key in keys]
    # Backdate all but the last entry so LRU order is unambiguous.
    now = paths[-1].stat().st_mtime
    for age, path in enumerate(reversed(paths[:-1]), start=1):
        os.utime(path, (now - 100 * age, now - 100 * age))
    cache.max_bytes = 3 * len(blob)
    cache._evict_over_limit()
    assert cache.stats.evictions > 0
    assert cache.total_bytes() <= cache.max_bytes
    # Oldest entries go first; the most recent one survives.
    assert cache.has("bundle", keys[-1])
    assert not cache.has("bundle", keys[0])


def test_cached_builds_once(tmp_path):
    cache = ArtifactCache(tmp_path)
    calls = []

    def build():
        calls.append(1)
        return {"value": 42}

    first = cache.cached("bundle", "12" * 32, build)
    second = cache.cached("bundle", "12" * 32, build)
    assert first == second == {"value": 42}
    assert len(calls) == 1


def test_stats_describe_and_kind_breakdown(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.put("feature_matrix", "aa" * 32, [1])
    cache.get("feature_matrix", "aa" * 32)
    cache.get("bundle", "bb" * 32)
    assert "1 hit(s), 1 miss(es), 1 put(s)" in cache.stats.describe()
    assert cache.stats.by_kind["feature_matrix.hit"] == 1
    assert cache.stats.by_kind["bundle.miss"] == 1


def test_cache_operations_emit_obs_counters(tmp_path):
    cache = ArtifactCache(tmp_path)
    with session(command="cache-test") as obs:
        cache.get("bundle", "00" * 32)
        cache.put("bundle", "00" * 32, "artifact")
        cache.get("bundle", "00" * 32)
        counters = obs.metrics.counters
    assert counters["cache.miss"] == 1
    assert counters["cache.put"] == 1
    assert counters["cache.hit"] == 1
    assert counters["cache.hit.bundle"] == 1


def test_process_cache_configured_from_env(tmp_path, monkeypatch):
    import repro.parallel.cache as cache_mod

    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "env-cache"))
    monkeypatch.setattr(cache_mod, "_CACHE", None)
    monkeypatch.setattr(cache_mod, "_CACHE_CONFIGURED", False)
    cache = get_cache()
    assert cache is not None
    assert cache.root == tmp_path / "env-cache"
    assert set_cache(None) is None
    assert get_cache() is None  # explicit disable wins over env


def test_atomic_put_leaves_no_temp_files(tmp_path):
    cache = ArtifactCache(tmp_path)
    for i in range(5):
        cache.put("bundle", f"{i:02d}" * 32, list(range(100)))
    assert not list(tmp_path.rglob("*.tmp"))


def test_unpicklable_put_raises_and_leaves_no_entry(tmp_path):
    cache = ArtifactCache(tmp_path)
    with pytest.raises(Exception):
        cache.put("bundle", "aa" * 32, lambda: None)
    assert not cache.has("bundle", "aa" * 32)
    assert not list(tmp_path.rglob("*.tmp"))
