"""Isolation for the parallel/cache tests.

The pool's ambient job count and the process-wide artifact cache are
module globals; every test here starts and ends with both reset so
tests cannot leak parallelism or caching into each other (or into the
rest of the suite).
"""

import pytest

from repro.experiments import clear_bundle_cache
from repro.parallel import set_cache, set_default_jobs


@pytest.fixture(autouse=True)
def _reset_parallel_state(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.delenv("REPRO_CACHE_DIR", raising=False)
    monkeypatch.delenv("REPRO_CACHE_MAX_BYTES", raising=False)
    set_default_jobs(None)
    set_cache(None)
    yield
    set_default_jobs(None)
    set_cache(None)
    clear_bundle_cache()
