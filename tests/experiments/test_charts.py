"""Terminal chart rendering tests."""

import pytest

from repro.experiments.charts import (
    fig11_chart,
    fig15_chart,
    grouped_bars,
    hbar,
    line_chart,
)
from repro.experiments.fig15_deadlines import Fig15Point
from repro.runtime import SchemeSummary


def test_hbar_scaling():
    assert hbar(0, 100, width=10) == ""
    assert hbar(100, 100, width=10) == "█" * 10
    half = hbar(50, 100, width=10)
    assert half.startswith("█" * 5)
    assert len(half) <= 6
    # Values beyond the max clamp instead of overflowing.
    assert len(hbar(500, 100, width=10)) == 10
    assert hbar(5, 0) == ""


def test_grouped_bars_layout():
    text = grouped_bars({
        "h264": {"baseline": 100.0, "prediction": 65.0},
        "aes": {"baseline": 100.0, "prediction": 55.0},
    })
    assert "h264:" in text and "aes:" in text
    assert "100.0%" in text and "55.0%" in text
    # The biggest value gets the longest bar.
    lines = {l.strip() for l in text.splitlines() if "baseline" in l}
    assert all("█" * 30 in l for l in lines)


def test_grouped_bars_empty():
    assert grouped_bars({}) == "(no data)"


def test_line_chart_markers_and_legend():
    text = line_chart({
        "a": [(0, 0), (1, 10)],
        "b": [(0, 10), (1, 0)],
    }, height=6, width=20)
    assert "o=a" in text and "x=b" in text
    assert text.count("o") >= 2 + 1  # two points plus legend
    assert "┤" in text


def test_line_chart_empty():
    assert line_chart({}) == "(no data)"


def test_fig11_chart_from_summaries():
    summaries = [
        SchemeSummary("h264", "baseline", 100.0, 0.0),
        SchemeSummary("h264", "prediction", 66.0, 0.0),
    ]
    text = fig11_chart(summaries)
    assert "h264:" in text
    assert "prediction" in text


def test_fig15_chart_from_points():
    points = [
        Fig15Point(0.6, "prediction", 78.0, 16.0),
        Fig15Point(1.0, "prediction", 61.0, 0.9),
        Fig15Point(1.6, "prediction", 53.0, 0.0),
        Fig15Point(0.6, "baseline", 100.0, 14.0),
        Fig15Point(1.0, "baseline", 100.0, 0.0),
        Fig15Point(1.6, "baseline", 100.0, 0.0),
    ]
    text = fig15_chart(points)
    assert "o=prediction" in text
    assert "x=baseline" in text
