"""Experiment-harness tests: every table/figure runs and the paper's
directional claims hold at a tiny workload scale."""

import pytest

from repro.experiments import (
    case_study,
    fig02_variation,
    fig03_pid,
    fig10_errors,
    fig11_schemes,
    fig12_overheads,
    fig13_oracle,
    fig14_boost,
    fig15_deadlines,
    fig16_fpga,
    table3,
    table4,
)
from repro.experiments import fig18_hls
from repro.experiments.schemes import average_row
from repro.workloads import ALL_BENCHMARKS

SCALE = 0.12


def test_table3_rows():
    rows = table3.run(SCALE)
    assert [r.benchmark for r in rows] == list(ALL_BENCHMARKS)
    text = table3.to_text(rows)
    assert "Decode one frame" in text
    assert "various sizes" in text


def test_table4_shape():
    rows = table4.run(SCALE)
    assert len(rows) == 7
    for row in rows:
        assert row.area_um2 > 0
        assert row.min_ms <= row.avg_ms <= row.max_ms
        assert row.max_ms < 16.7  # baseline never misses at 1.0x
    text = table4.to_text(rows)
    assert "h264" in text and "[paper]" in text


def test_fig02_three_clips_with_variation():
    result = fig02_variation.run(SCALE, n_frames=20)
    assert set(result.clips) == {"coastguard", "foreman", "news"}
    for clip in result.clips:
        assert len(result.series_ms[clip]) == 20
        assert result.spread(clip) > 0.2  # visible per-frame variation
    # Clip separation as in Fig 2.
    avg = {c: sum(v) / len(v) for c, v in result.series_ms.items()}
    assert avg["coastguard"] > avg["news"]
    assert "Fig 2" in fig02_variation.to_text(result)


def test_fig03_pid_lags_spikes():
    result = fig03_pid.run(SCALE, window=30)
    assert result.n_jobs > 10
    assert result.lag_correlation() > 0.2  # errors chase last change
    assert "PID" in fig03_pid.to_text(result)


def test_fig10_prediction_errors_small():
    result = fig10_errors.run(SCALE)
    assert set(result.reports) == set(ALL_BENCHMARKS)
    for name, report in result.reports.items():
        limit = 12.0 if name == "djpeg" else 3.0
        assert report.mean_abs_pct < limit, name
    # djpeg is the hard one, as in the paper.
    assert (result.reports["djpeg"].mean_abs_pct
            > result.reports["cjpeg"].mean_abs_pct)
    assert "djpeg" in fig10_errors.to_text(result)


@pytest.fixture(scope="module")
def fig11():
    return fig11_schemes.run(SCALE)


def test_fig11_directional_claims(fig11):
    head = fig11_schemes.headline(fig11)
    # DVFS saves a lot of energy; the baseline never misses.
    assert 20 < head["prediction_energy_savings_pct"] < 65
    assert head["prediction_miss_pct"] < 2.0
    # PID misses far more than prediction.
    assert head["pid_miss_pct"] > 3.0
    assert head["pid_miss_pct"] > head["prediction_miss_pct"]
    baseline = average_row(fig11, "baseline")
    assert baseline.miss_rate_pct == 0.0
    assert baseline.normalized_energy_pct == pytest.approx(100.0)
    assert "headline" in fig11_schemes.to_text(fig11)


def test_fig13_oracle_ordering():
    summaries = fig13_oracle.run(SCALE)
    head = fig13_oracle.headline(summaries)
    # oracle <= no-overhead <= with-overhead energy.
    assert (head["oracle_energy_pct"]
            <= head["no_overhead_energy_pct"] + 1e-9)
    assert (head["no_overhead_energy_pct"]
            <= head["prediction_energy_pct"] + 1e-9)
    assert head["gap_to_oracle_pct"] < 5.0
    assert head["oracle_miss_pct"] == 0.0


def test_fig14_boost_removes_misses():
    summaries = fig14_boost.run(SCALE)
    head = fig14_boost.headline(summaries)
    assert head["boost_miss_pct"] <= head["prediction_miss_pct"]
    assert head["boost_miss_pct"] == pytest.approx(0.0)
    assert head["boost_energy_increase_pct"] < 2.0


def test_fig15_deadline_sensitivity():
    points = fig15_deadlines.run(SCALE, factors=(0.6, 1.0, 1.6))
    pred = fig15_deadlines.series(points, "prediction")
    # Longer deadlines -> monotonically less energy.
    energies = [e for _, e, _ in pred]
    assert energies[0] > energies[1] > energies[2]
    # Short deadlines cause misses even for the baseline.
    base = fig15_deadlines.series(points, "baseline")
    assert base[0][2] > 0.0   # 0.6x: baseline misses
    assert base[2][2] == 0.0  # 1.6x: none
    # At longer deadlines prediction stops missing.
    assert pred[2][2] == pytest.approx(0.0)
    assert "factor" in fig15_deadlines.to_text(points)


def test_fig16_fpga_savings():
    summaries = fig16_fpga.run(SCALE)
    head = fig16_fpga.headline(summaries)
    assert 20 < head["prediction_energy_savings_pct"] < 65
    assert head["prediction_miss_pct"] < 2.0


@pytest.mark.parametrize("tech", ["asic", "fpga"])
def test_fig12_17_overheads(tech):
    rows = fig12_overheads.run(SCALE, tech=tech)
    assert [r.benchmark for r in rows][-1] == "average"
    avg = rows[-1]
    assert 0 < avg.area_pct < 60
    assert 0 < avg.energy_pct < 10
    assert 0 < avg.time_pct < 10
    text = fig12_overheads.to_text(rows, tech=tech)
    assert ("Fig 12" if tech == "asic" else "Fig 17") in text


def test_fig18_19_hls_beats_rtl_slice():
    results = fig18_hls.run(SCALE)
    by_label = {r.label: r for r in results}
    assert set(by_label) == {"md-rtl", "md-hls", "stencil-rtl",
                             "stencil-hls"}
    for name in ("md", "stencil"):
        rtl = by_label[f"{name}-rtl"]
        hls = by_label[f"{name}-hls"]
        # HLS slice runs faster and misses at most as often.
        assert hls.time_pct < rtl.time_pct + 1e-9
        assert hls.miss_rate_pct <= rtl.miss_rate_pct
        # Accuracy comparable (both tiny).
        assert abs(hls.error_box.median) < 2.0
        assert abs(rtl.error_box.median) < 2.0
    assert "md-hls" in fig18_hls.to_text(results)


def test_case_study_shape():
    result = case_study.run(SCALE)
    assert 1 <= result.n_selected_features <= result.n_candidate_features
    assert result.worst_case_error_pct < 4.0  # paper: ~3%
    assert 0.01 < result.slice_area_fraction < 0.15  # paper: 5.7%
    assert result.slice_time_fraction_max < 0.25  # paper: 5-15%
    assert "case study" in case_study.to_text(result)


def test_ext_all_schemes_ranking():
    from repro.experiments import ext_all_schemes

    summaries = ext_all_schemes.run(SCALE)
    ranking = ext_all_schemes.ranking(summaries)
    schemes_in_order = [r[0] for r in ranking]
    # Oracle cheapest, baseline most expensive, prediction best real.
    assert schemes_in_order[0] == "oracle"
    assert schemes_in_order[-1] == "baseline"
    assert schemes_in_order[1] == "prediction"
    assert "ranking by average energy" in ext_all_schemes.to_text(summaries)


def test_ext_resolutions_shape():
    from repro.experiments import ext_resolutions

    result = ext_resolutions.run(SCALE)
    energy = result.normalized_energy_pct
    assert energy["baseline"] == pytest.approx(100.0)
    assert energy["table"] < 100.0
    assert energy["prediction"] < energy["table"]
    assert "mixed-resolution" in ext_resolutions.to_text(result)


def test_ext_taxonomy_profiles():
    from repro.experiments import ext_taxonomy

    rows = ext_taxonomy.run(SCALE)
    assert len(rows) == 7
    for row in rows:
        assert row.profile.cv > 0
        assert -1.0 <= row.profile.lag1_autocorr <= 1.0
        assert row.pid_miss_pct >= row.prediction_miss_pct - 1e-9
    assert "taxonomy" in ext_taxonomy.to_text(rows)
