"""Documentation quality gate: every public item carries a docstring.

Walks the whole ``repro`` package and fails on any public module,
class, function or method without documentation — keeping deliverable
quality from eroding as the library grows.
"""

import importlib
import inspect
import pkgutil

import repro

#: Modules that execute on import (CLI entry point).
SKIP_MODULES = {"repro.__main__"}


def iter_public_items():
    """Yield (module, qualified name, object) for every public item."""
    for mod_info in pkgutil.walk_packages(repro.__path__,
                                          prefix="repro."):
        if mod_info.name in SKIP_MODULES:
            continue
        module = importlib.import_module(mod_info.name)
        yield mod_info.name, "<module>", module
        for name, obj in vars(module).items():
            if name.startswith("_"):
                continue
            if getattr(obj, "__module__", None) != mod_info.name:
                continue  # re-export; documented at its home
            if not (inspect.isclass(obj) or inspect.isfunction(obj)):
                continue
            yield mod_info.name, name, obj
            if inspect.isclass(obj):
                for mname, meth in vars(obj).items():
                    if mname.startswith("_"):
                        continue
                    if inspect.isfunction(meth):
                        yield mod_info.name, f"{name}.{mname}", meth


def test_every_public_item_documented():
    missing = []
    for mod_name, qual, obj in iter_public_items():
        doc = obj.__doc__ if qual == "<module>" else inspect.getdoc(obj)
        if not doc or not doc.strip():
            missing.append(f"{mod_name}:{qual}")
    assert not missing, (
        f"{len(missing)} public items lack docstrings:\n"
        + "\n".join(missing[:40])
    )


def test_module_docstrings_are_substantive():
    """Module docs should explain, not just restate the filename."""
    for mod_name, qual, obj in iter_public_items():
        if qual != "<module>":
            continue
        if mod_name.rsplit(".", 1)[-1] == "__init__":
            continue
        assert len(obj.__doc__.strip()) >= 40, mod_name
