"""Feature sets, instrumentation and job recording tests."""

import numpy as np
import pytest

from repro.analysis import (
    FeatureMatrix,
    FeatureRecorder,
    FeatureSet,
    FeatureSpec,
    discover_features,
    probe_nets,
    record_jobs,
)
from repro.rtl import Simulation, synthesize
from tests.conftest import build_toy, pack_item


@pytest.fixture(scope="module")
def toy():
    module = build_toy()
    return module, synthesize(module)


@pytest.fixture(scope="module")
def toy_features(toy):
    module, netlist = toy
    return discover_features(module, netlist)


def test_feature_spec_validation():
    with pytest.raises(ValueError, match="kind"):
        FeatureSpec("zzz", "c")
    with pytest.raises(ValueError, match="src and dst"):
        FeatureSpec("stc", "f")
    spec = FeatureSpec("stc", "f", "A", "B")
    assert spec.name == "stc:f:A->B"


def test_feature_set_rejects_duplicates():
    spec = FeatureSpec("ic", "c")
    with pytest.raises(ValueError, match="duplicate"):
        FeatureSet([spec, spec])


def test_discovered_feature_inventory(toy_features):
    names = set(toy_features.names())
    # 7 arcs + (ic+aivs) x 2 down counters + (ic+apvs) x 1 up counter.
    assert "stc:ctrl:IDLE->FETCH" in names
    assert "stc:ctrl:FETCH->COMP_A" in names
    assert "ic:c_a" in names and "aivs:c_a" in names
    assert "ic:items_done" in names and "apvs:items_done" in names
    assert len(toy_features) == 7 + 4 + 2


def test_recorder_accumulates_expected_values(toy, toy_features):
    module, _ = toy
    items = [pack_item(5, 0), pack_item(3, 1), pack_item(2, 0)]
    recorder = FeatureRecorder(toy_features)
    sim = Simulation(module, listener=recorder)
    sim.load(inputs={"n_items": 3}, memories={"items": items})
    sim.run()
    vec = recorder.vector()
    names = toy_features.names()
    values = dict(zip(names, vec))
    assert values["stc:ctrl:FETCH->COMP_A"] == 2
    assert values["stc:ctrl:FETCH->COMP_B"] == 1
    assert values["ic:c_a"] == 2
    assert values["aivs:c_a"] == (5 + 2) * 3
    assert values["aivs:c_b"] == 3 * 7
    assert values["ic:items_done"] == 1  # one reset at job start


def test_recorder_start_job_clears(toy_features):
    recorder = FeatureRecorder(toy_features)
    recorder.on_transition("ctrl", "IDLE", "FETCH")
    assert recorder.vector().sum() == 1
    recorder.start_job()
    assert recorder.vector().sum() == 0


def test_record_jobs_builds_matrix(toy, toy_features):
    module, _ = toy
    jobs = []
    for spec in ([(5, 0)], [(3, 1), (2, 0)], [(1, 1)] * 4):
        items = [pack_item(w, m) for w, m in spec]
        jobs.append(({"n_items": len(items)}, {"items": items}))
    matrix = record_jobs(module, toy_features, jobs)
    assert matrix.n_jobs == 3
    assert matrix.n_features == len(toy_features)
    # Cycles strictly positive and consistent with feature content.
    assert (matrix.cycles > 0).all()
    col = matrix.feature_set.index_of("stc:ctrl:FETCH->COMP_B")
    assert matrix.x[:, col].tolist() == [0, 1, 4]


def test_record_jobs_raises_on_timeout(toy, toy_features):
    module, _ = toy
    jobs = [({"n_items": 0}, {"items": []})]  # never starts => never done
    with pytest.raises(RuntimeError, match="did not finish"):
        record_jobs(module, toy_features, jobs, max_cycles=100)


def test_feature_matrix_validation(toy_features):
    with pytest.raises(ValueError, match="2-D"):
        FeatureMatrix(toy_features, np.zeros(3), np.zeros(3))
    with pytest.raises(ValueError, match="job count"):
        FeatureMatrix(toy_features, np.zeros((2, len(toy_features))),
                      np.zeros(3))
    with pytest.raises(ValueError, match="feature count"):
        FeatureMatrix(toy_features, np.zeros((2, 3)), np.zeros(2))


def test_feature_matrix_subset(toy, toy_features):
    module, _ = toy
    jobs = [({"n_items": 1}, {"items": [pack_item(2, 0)]})]
    matrix = record_jobs(module, toy_features, jobs)
    keep = [toy_features.index_of("ic:c_a"),
            toy_features.index_of("aivs:c_a")]
    sub = matrix.subset(keep)
    assert sub.n_features == 2
    assert sub.feature_set.names() == ["ic:c_a", "aivs:c_a"]
    assert sub.x[0, 1] == 6.0  # 2 * 3


def test_probe_nets_resolves_all_kinds(toy, toy_features):
    module, netlist = toy
    nets = probe_nets(module, netlist, toy_features)
    assert "ctrl__t1__FETCH__COMP_A" in nets
    # Counter load nets exist and are driven.
    for net in nets:
        assert netlist.driver(net) is not None, net


def test_probe_nets_closure_excludes_datapath(toy, toy_features):
    module, netlist = toy
    nets = probe_nets(module, netlist, toy_features)
    cells = netlist.fanin_closure(nets)
    constructs = {netlist.cells[i].provenance.construct for i in cells}
    assert "datapath" not in constructs


def test_features_identical_between_full_and_elided_run(toy, toy_features):
    """Wait-state elision must not change recorded features."""
    module, _ = toy
    items = [pack_item(9, 0), pack_item(4, 1), pack_item(7, 1)]

    def run(elide):
        recorder = FeatureRecorder(toy_features)
        sim = Simulation(module, listener=recorder, elide=elide)
        sim.load(inputs={"n_items": 3}, memories={"items": items})
        sim.run()
        return recorder.vector()

    full = run(None)
    elided = run({("ctrl", "COMP_A"), ("ctrl", "COMP_B")})
    np.testing.assert_array_equal(full, elided)


def _varied_jobs(n):
    specs = [[((3 * i + j) % 11 + 1, (i + j) % 2)
              for j in range(i % 4 + 1)] for i in range(n)]
    jobs = []
    for spec in specs:
        items = [pack_item(w, m) for w, m in spec]
        jobs.append(({"n_items": len(items)}, {"items": items}))
    return jobs


@pytest.mark.parametrize("n_jobs,workers", [
    (13, 3),   # uneven: 3 does not divide 13
    (13, 5),   # last chunk shorter still
    (2, 4),    # more workers than jobs (empty worker slots)
    (1, 4),    # degenerate width-1 batch
    (0, 3),    # no jobs at all
])
def test_record_jobs_batch_parallel_bit_identical(toy, toy_features,
                                                  n_jobs, workers):
    """Satellite gate: batch x parallel recording must be bit-identical
    to serial interp for every chunking, including uneven and empty
    chunks and width-1 batches."""
    module, _ = toy
    jobs = _varied_jobs(n_jobs)
    baseline = record_jobs(module, toy_features, jobs,
                           backend="interp", workers=1)
    matrix = record_jobs(module, toy_features, jobs,
                         backend="batch", workers=workers)
    assert np.array_equal(matrix.x, baseline.x)
    assert np.array_equal(matrix.cycles, baseline.cycles)


def test_record_jobs_batch_timeout_matches_serial_error(toy,
                                                        toy_features):
    module, _ = toy
    jobs = _varied_jobs(2) + [({"n_items": 0}, {"items": []})]
    with pytest.raises(RuntimeError,
                       match="job 2 did not finish within 100 cycles"):
        record_jobs(module, toy_features, jobs, max_cycles=100,
                    backend="batch")
