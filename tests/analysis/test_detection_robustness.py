"""Detection robustness: hand-built near-miss netlist patterns.

The detectors must not fire on structures that merely resemble FSMs or
counters — these tests build netlists cell by cell, bypassing the
synthesizer, to probe the pattern matchers' edges the way a hostile
(or just unusual) RTL would.
"""

import pytest

from repro.analysis import detect_counters, detect_fsms
from repro.rtl.netlist import Netlist, Provenance


def base_netlist():
    nl = Netlist("adv")
    nl.add("PORT", (), out="in0")
    nl.add("CONST", (), out="k0", param=0)
    nl.add("CONST", (), out="k1", param=1)
    nl.add("CONST", (), out="k2", param=2)
    return nl


def test_true_fsm_pattern_detected():
    nl = base_netlist()
    # next = MUX(sel0, 1, MUX(sel1, 2, hold)) with self-compares.
    nl.add("EQ", ("state", "k0"), out="is0", width=1)
    nl.add("AND", ("is0", "in0"), out="sel0", width=1)
    nl.add("EQ", ("state", "k1"), out="is1", width=1)
    nl.add("AND", ("is1", "in0"), out="sel1", width=1)
    nl.add("MUX", ("sel1", "k2", "state"), out="m1")
    nl.add("MUX", ("sel0", "k1", "m1"), out="m0")
    nl.add("DFF", ("m0",), out="state")
    found = detect_fsms(nl)
    assert len(found) == 1
    assert found[0].state_net == "state"
    assert {(t.src_code, t.dst_code) for t in found[0].transitions} \
        == {(0, 1), (1, 2)}


def test_mux_chain_without_self_compare_rejected():
    nl = base_netlist()
    # Selects depend only on the input, never on the register itself.
    nl.add("MUX", ("in0", "k1", "flag"), out="next")
    nl.add("DFF", ("next",), out="flag")
    assert detect_fsms(nl) == []


def test_mux_chain_with_nonconstant_data_rejected():
    nl = base_netlist()
    nl.add("EQ", ("state", "k0"), out="is0", width=1)
    nl.add("ADD", ("state", "k1"), out="inc")
    nl.add("MUX", ("is0", "inc", "state"), out="next")
    nl.add("DFF", ("next",), out="state")
    assert detect_fsms(nl) == []


def test_chain_not_terminating_in_hold_rejected():
    nl = base_netlist()
    nl.add("EQ", ("state", "k0"), out="is0", width=1)
    # Fallthrough goes to a port, not back to the register.
    nl.add("MUX", ("is0", "k1", "in0"), out="next")
    nl.add("DFF", ("next",), out="state")
    assert detect_fsms(nl) == []


def test_true_down_counter_detected():
    nl = base_netlist()
    nl.add("SUB", ("cnt", "k1"), out="dec")
    nl.add("GT", ("cnt", "k0"), out="gt", width=1)
    nl.add("MUX", ("gt", "dec", "cnt"), out="tickmux")
    nl.add("MUX", ("in0", "k2", "tickmux"), out="next")
    nl.add("DFF", ("next",), out="cnt")
    found = detect_counters(nl)
    assert len(found) == 1
    assert found[0].mode == "down"
    assert found[0].step == 1
    assert found[0].load_cond_net == "in0"


def test_down_counter_without_gt_guard_rejected():
    """A decrementing register with no `> 0` guard can wrap — not the
    wait-counter idiom, and its range is not a latency."""
    nl = base_netlist()
    nl.add("SUB", ("cnt", "k1"), out="dec")
    nl.add("MUX", ("in0", "dec", "cnt"), out="tickmux")
    nl.add("MUX", ("in0", "k2", "tickmux"), out="next")
    nl.add("DFF", ("next",), out="cnt")
    assert detect_counters(nl) == []


def test_variable_decrement_rejected():
    nl = base_netlist()
    nl.add("SUB", ("cnt", "in0"), out="dec")  # data-dependent step
    nl.add("GT", ("cnt", "k0"), out="gt", width=1)
    nl.add("MUX", ("gt", "dec", "cnt"), out="tickmux")
    nl.add("MUX", ("in0", "k2", "tickmux"), out="next")
    nl.add("DFF", ("next",), out="cnt")
    assert detect_counters(nl) == []


def test_up_counter_with_nonzero_reset_rejected():
    """Up counters must reset to zero for APV capture to mean range."""
    nl = base_netlist()
    nl.add("ADD", ("cnt", "k1"), out="inc")
    nl.add("MUX", ("in0", "k2", "inc"), out="next")  # resets to 2
    nl.add("DFF", ("next",), out="cnt")
    assert detect_counters(nl) == []


def test_up_counter_with_zero_reset_detected():
    nl = base_netlist()
    nl.add("ADD", ("cnt", "k1"), out="inc")
    nl.add("MUX", ("in0", "k0", "inc"), out="next")
    nl.add("DFF", ("next",), out="cnt")
    found = detect_counters(nl)
    assert len(found) == 1
    assert found[0].mode == "up"


def test_subtract_of_other_register_rejected():
    nl = base_netlist()
    nl.add("DFF", ("in0",), out="other")
    nl.add("SUB", ("other", "k1"), out="dec")  # not self-referencing
    nl.add("GT", ("cnt", "k0"), out="gt", width=1)
    nl.add("MUX", ("gt", "dec", "cnt"), out="tickmux")
    nl.add("MUX", ("in0", "k2", "tickmux"), out="next")
    nl.add("DFF", ("next",), out="cnt")
    assert detect_counters(nl) == []


def test_dff_behind_seqctl_not_traversed():
    """Cone walks stop at opaque SEQCTL macros."""
    nl = base_netlist()
    nl.add("SEQCTL", ("in0",), out="busy", width=1)
    nl.add("EQ", ("state", "k0"), out="is0", width=1)
    nl.add("AND", ("is0", "busy"), out="sel", width=1)
    nl.add("MUX", ("sel", "k1", "state"), out="next")
    nl.add("DFF", ("next",), out="state")
    found = detect_fsms(nl)
    # Still detected (the self-compare is outside the macro) ...
    assert len(found) == 1
    # ... and the cone helper stayed bounded.
    cone = nl.comb_cone("sel")
    kinds = {c.kind for c in cone}
    assert "SEQCTL" in kinds  # reached as a frontier, not entered
