"""Structural FSM/counter detection tests."""

import pytest

from repro.analysis import detect_counters, detect_fsms
from repro.rtl import Fsm, Module, Sig, down_counter, synthesize, up_counter
from tests.conftest import build_toy


@pytest.fixture(scope="module")
def toy():
    module = build_toy()
    return module, synthesize(module)


def test_detects_the_control_fsm(toy):
    module, netlist = toy
    fsms = detect_fsms(netlist)
    nets = {f.state_net for f in fsms}
    assert "ctrl__state" in nets


def test_detected_fsm_has_all_states_and_arcs(toy):
    module, netlist = toy
    det = next(f for f in detect_fsms(netlist) if f.state_net == "ctrl__state")
    ctrl = module.fsms["ctrl"]
    assert set(det.codes) == set(ctrl.states.values())
    pairs = {(t.src_code, t.dst_code) for t in det.transitions}
    expected = {
        (ctrl.code_of(t.src), ctrl.code_of(t.dst)) for t in ctrl.transitions
    }
    assert pairs == expected


def test_detects_all_three_counters(toy):
    module, netlist = toy
    counters = {c.net: c for c in detect_counters(netlist)}
    assert counters["c_a"].mode == "down"
    assert counters["c_b"].mode == "down"
    assert counters["items_done"].mode == "up"
    assert counters["c_a"].step == 1


def test_counters_not_detected_as_fsms(toy):
    module, netlist = toy
    nets = {f.state_net for f in detect_fsms(netlist)}
    assert not nets & {"c_a", "c_b", "items_done", "idx"}


def test_fsm_not_detected_as_counter(toy):
    module, netlist = toy
    nets = {c.net for c in detect_counters(netlist)}
    assert "ctrl__state" not in nets


def test_plain_register_not_detected_at_all(toy):
    """idx accumulates via entry actions — neither FSM nor counter."""
    module, netlist = toy
    assert "idx" not in {f.state_net for f in detect_fsms(netlist)}
    assert "idx" not in {c.net for c in detect_counters(netlist)}


def _make_module_with(builder):
    m = Module("t")
    start = m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B", cond=start)
    m.fsm(fsm)
    builder(m, fsm)
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    return m.finalize()


def test_flag_register_gated_on_other_fsm_rejected():
    """A flag written with constants under another FSM's state is not an
    FSM: its next logic never compares against its own output."""
    def build(m, fsm):
        m.reg("flag", 1)
        m.update("flag", 1, fsm="f", state="A")
        m.update("flag", 0, fsm="f", state="B")
    netlist = synthesize(_make_module_with(build))
    assert "flag" not in {f.state_net for f in detect_fsms(netlist)}


def test_variable_step_accumulator_rejected_as_counter():
    def build(m, fsm):
        amount = m.port("amount", 8)
        m.reg("acc", 32)
        m.update("acc", Sig("acc") + amount, cond=Sig("start"))
    netlist = synthesize(_make_module_with(build))
    assert "acc" not in {c.net for c in detect_counters(netlist)}


def test_step_two_down_counter_detected():
    def build(m, fsm):
        n = m.port("n", 16)
        m.counter(down_counter("c2", load_cond=Sig("start"),
                               load_value=n, step=2))
    netlist = synthesize(_make_module_with(build))
    counters = {c.net: c for c in detect_counters(netlist)}
    assert counters["c2"].step == 2
    assert counters["c2"].mode == "down"


def test_gated_up_counter_detected():
    def build(m, fsm):
        en = m.port("en", 1)
        m.counter(up_counter("cu", reset_cond=Sig("start"), enable=en))
    netlist = synthesize(_make_module_with(build))
    counters = {c.net: c for c in detect_counters(netlist)}
    assert counters["cu"].mode == "up"


def test_detected_counter_nets_point_at_load_logic(toy):
    module, netlist = toy
    det = next(c for c in detect_counters(netlist) if c.net == "c_a")
    # The load condition cone should reach the FETCH->COMP_A criteria.
    cone = netlist.fanin_closure([det.load_cond_net])
    names = {netlist.cells[i].provenance.name for i in cone}
    assert "ctrl:1" in names  # arc index 1 is FETCH->COMP_A
