"""Detection report rendering tests."""

from repro.accelerators import get_design
from repro.analysis.report import detection_report
from repro.rtl import synthesize
from tests.conftest import build_toy


def test_toy_report_contents():
    module = build_toy()
    text = detection_report(module, synthesize(module))
    assert "design toy" in text
    assert "FSMs detected: 1" in text
    assert "ctrl [ok]" in text
    assert "FETCH -> COMP_A" in text
    assert "c_a: down, step 1" in text
    assert "items_done: up" in text
    assert "candidate features: 13" in text


def test_report_marks_every_construct_ok_on_benchmarks():
    for name in ("md", "sha"):
        module = get_design(name).build()
        text = detection_report(module, synthesize(module))
        assert "MISSED" not in text, name
        assert "um^2 ASIC" in text
