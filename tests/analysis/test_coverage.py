"""Feature-visibility diagnostic tests."""

import pytest

from repro.analysis.coverage import (
    visibility_by_benchmark,
    visibility_report,
)
from tests.conftest import build_toy, pack_item


def test_toy_visibility_attribution():
    module = build_toy()
    items = [pack_item(10, 0), pack_item(5, 1)]
    report = visibility_report(
        module, [({"n_items": 2}, {"items": items})])
    # The toy has no dynamic waits: everything is visible.
    assert report.dynamic_wait_cycles == 0
    assert report.visible_fraction == 1.0
    # Waits dominate (work cycles >> step cycles).
    assert report.counter_wait_cycles > report.step_cycles
    assert (report.counter_wait_cycles + report.step_cycles
            == report.total_cycles)


def test_visibility_accounts_all_cycles():
    module = build_toy()
    items = [pack_item(3, 1)]
    report = visibility_report(
        module, [({"n_items": 1}, {"items": items})])
    assert (report.counter_wait_cycles + report.dynamic_wait_cycles
            + report.step_cycles == report.total_cycles)


def test_djpeg_less_visible_than_cjpeg():
    """The diagnostic predicts Fig 10: djpeg's serial Huffman decode is
    invisible, cjpeg is fully counter-backed."""
    reports = visibility_by_benchmark(("cjpeg", "djpeg"), scale=0.1,
                                      n_jobs=3)
    assert reports["cjpeg"].invisible_fraction < 0.01
    assert reports["djpeg"].invisible_fraction > 0.05
    assert (reports["djpeg"].visible_fraction
            < reports["cjpeg"].visible_fraction)


def test_h264_small_invisible_share():
    reports = visibility_by_benchmark(("h264",), scale=0.1, n_jobs=2)
    r = reports["h264"]
    # The hidden CABAC stall is a few percent of the job.
    assert 0.005 < r.invisible_fraction < 0.10
