"""Synthesis and netlist tests."""

import pytest

from repro.rtl import Module, Netlist, Sig, synthesize
from repro.rtl.netlist import Provenance
from repro.rtl.tech import (
    FpgaResources,
    asic_area,
    asic_cell_area,
    asic_leakage_power,
    asic_switch_energy_per_cycle,
    fpga_cell_resources,
    fpga_leakage_power,
    fpga_resources,
    fpga_switch_energy_per_cycle,
)
from tests.conftest import build_toy


@pytest.fixture(scope="module")
def toy_netlist() -> Netlist:
    return synthesize(build_toy())


def test_synthesize_requires_finalized():
    m = Module("raw")
    with pytest.raises(ValueError, match="finalized"):
        synthesize(m)


def test_every_state_element_has_a_dff(toy_netlist):
    dff_outs = {c.out for c in toy_netlist.cells_of_kind("DFF")}
    assert {"idx", "c_a", "c_b", "items_done", "ctrl__state"} <= dff_outs


def test_ports_and_memories_present(toy_netlist):
    assert toy_netlist.driver("n_items").kind == "PORT"
    sram = toy_netlist.driver("__mem__items")
    assert sram.kind == "SRAM"
    assert sram.param == 256 * 16


def test_nets_single_driver(toy_netlist):
    outs = [c.out for c in toy_netlist]
    assert len(outs) == len(set(outs))


def test_transition_wires_have_arc_provenance(toy_netlist):
    arc_cells = toy_netlist.cells_of("fsm_arc")
    roles = {c.provenance.role for c in arc_cells}
    assert "IDLE->FETCH" in roles
    assert any(c.out == "ctrl__t0__IDLE__FETCH" for c in arc_cells)


def test_counter_pattern_shape(toy_netlist):
    """Down counter lowering: DFF <- MUX(load, val, MUX(tick, SUB, hold))."""
    dff = toy_netlist.driver("c_a")
    load_mux = toy_netlist.driver(dff.fanin[0])
    assert load_mux.kind == "MUX"
    tick_mux = toy_netlist.driver(load_mux.fanin[2])
    assert tick_mux.kind == "MUX"
    sub = toy_netlist.driver(tick_mux.fanin[1])
    assert sub.kind == "SUB"
    assert sub.fanin[0] == "c_a"
    assert tick_mux.fanin[2] == "c_a"  # hold path


def test_fsm_pattern_shape(toy_netlist):
    """State DFF is fed by a mux chain ending in the hold path."""
    dff = toy_netlist.driver("ctrl__state")
    net = dff.fanin[0]
    depth = 0
    while True:
        cell = toy_netlist.driver(net)
        if cell.kind != "MUX":
            break
        depth += 1
        assert cell.fanin[1].startswith("__const_")
        net = cell.fanin[2]
    assert net == "ctrl__state"
    assert depth == 7  # one mux per transition


def test_done_net_exists(toy_netlist):
    assert toy_netlist.driver("__done") is not None


def test_datapath_cells_priced(toy_netlist):
    dp = toy_netlist.cells_of("datapath", "alu_b")
    muls = [c for c in dp if c.kind == "MUL"]
    assert muls and muls[0].count == 12


def test_fanin_closure_excludes_datapath(toy_netlist):
    """The cone of the done signal never touches datapath sinks."""
    ids = toy_netlist.fanin_closure(["__done"])
    kinds = {toy_netlist.cells[i].provenance.construct for i in ids}
    assert "datapath" not in kinds


def test_fanin_closure_reaches_memory_through_wires(toy_netlist):
    ids = toy_netlist.fanin_closure(["c_a"])
    constructs = {
        (toy_netlist.cells[i].provenance.construct,
         toy_netlist.cells[i].provenance.name)
        for i in ids
    }
    assert ("memory", "items") in constructs
    assert ("port", "n_items") in constructs


def test_comb_cone_stops_at_state(toy_netlist):
    dff = toy_netlist.driver("ctrl__state")
    cone = toy_netlist.comb_cone(dff.fanin[0])
    # The cone includes the state DFF itself as a stopping frontier cell
    # but nothing behind other DFFs' inputs.
    kinds = {c.kind for c in cone}
    assert "MUX" in kinds


def test_asic_area_positive_and_dominated_by_datapath(toy_netlist):
    total = asic_area(toy_netlist)
    assert total > 0
    dp_area = sum(
        asic_cell_area(c) for c in toy_netlist.cells_of("datapath")
    )
    assert dp_area / total > 0.5  # datapath dominates, like real accelerators


def test_asic_energy_and_leakage_positive(toy_netlist):
    for cell in toy_netlist:
        assert asic_switch_energy_per_cycle(cell) >= 0
    assert asic_leakage_power(asic_area(toy_netlist)) > 0


def test_fpga_resources(toy_netlist):
    res = fpga_resources(toy_netlist)
    assert res.luts > 0 and res.ffs > 0
    assert res.dsps >= 16  # datapath multipliers map to DSPs
    assert res.brams >= 1
    assert fpga_switch_energy_per_cycle(res) > 0
    assert fpga_leakage_power(res) > 0


def test_fpga_fraction_metric():
    total = FpgaResources(luts=100, ffs=50, dsps=10, brams=2)
    part = FpgaResources(luts=10, ffs=5, dsps=1, brams=0)
    # (10/100 + 1/10 + 0/2) / 3
    assert abs(part.fraction_of(total) - (0.1 + 0.1 + 0.0) / 3) < 1e-12


def test_netlist_rejects_double_drive():
    nl = Netlist("x")
    nl.add("PORT", (), out="a")
    with pytest.raises(ValueError, match="already driven"):
        nl.add("PORT", (), out="a")


def test_netlist_rejects_unknown_kind():
    nl = Netlist("x")
    with pytest.raises(ValueError, match="unknown cell kind"):
        nl.add("FROB", ())


def test_stats_weighted_by_count(toy_netlist):
    stats = toy_netlist.stats()
    assert stats["MUL"] >= 16  # 4 + 12 datapath multipliers
