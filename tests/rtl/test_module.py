"""Module construction and validation tests."""

import pytest

from repro.rtl import (
    DatapathBlock,
    Fsm,
    Module,
    Sig,
    down_counter,
    up_counter,
)
from repro.rtl.counter import Counter


def minimal_module():
    m = Module("t")
    m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B", cond=Sig("start"))
    m.fsm(fsm)
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    return m


def test_finalize_requires_done():
    m = Module("t")
    m.port("x")
    with pytest.raises(ValueError, match="done"):
        m.finalize()


def test_duplicate_signal_name_rejected():
    m = Module("t")
    m.port("x")
    with pytest.raises(ValueError, match="already used"):
        m.wire("x", Sig("x") + 1)
    with pytest.raises(ValueError, match="already used"):
        m.reg("x")


def test_fsm_state_signal_claims_namespace():
    m = Module("t")
    m.fsm(Fsm("f", initial="A"))
    with pytest.raises(ValueError, match="already used"):
        m.port("f__state")


def test_unknown_signal_reference_rejected():
    m = minimal_module()
    m.wire("bad", Sig("ghost") + 1)
    with pytest.raises(ValueError, match="ghost"):
        m.finalize()


def test_update_to_unknown_register_rejected():
    m = minimal_module()
    m.update("ghost", 1)
    with pytest.raises(ValueError, match="ghost"):
        m.finalize()


def test_combinational_cycle_rejected():
    m = minimal_module()
    m.wire("a", Sig("b") + 1)
    m.wire("b", Sig("a") + 1)
    with pytest.raises(ValueError, match="cycle"):
        m.finalize()


def test_wire_topological_order():
    m = minimal_module()
    m.wire("c", Sig("b") + 1)
    m.wire("b", Sig("a") + 1)
    m.wire("a", Sig("start") + 0)
    m.finalize()
    order = m.wire_order
    assert order.index("a") < order.index("b") < order.index("c")


def test_wait_state_needs_down_counter():
    m = Module("t")
    m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "W", cond=Sig("start"))
    fsm.transition("W", "B")
    fsm.wait_state("W", "cnt")
    m.fsm(fsm)
    m.counter(up_counter("cnt", reset_cond=Sig("start")))
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    with pytest.raises(ValueError, match="down counter"):
        m.finalize()


def test_wait_state_unknown_counter_rejected():
    m = Module("t")
    m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "W", cond=Sig("start"))
    fsm.wait_state("W", "missing")
    m.fsm(fsm)
    m.set_done(Sig("f__state") == fsm.code_of("W"))
    with pytest.raises(ValueError, match="missing"):
        m.finalize()


def test_default_arc_must_be_last():
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B")          # default
    fsm.transition("A", "C", cond=Sig("x"))
    with pytest.raises(ValueError, match="default arc"):
        fsm.validate()


def test_multiple_default_arcs_rejected():
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B")
    fsm.transition("A", "C")
    with pytest.raises(ValueError, match="multiple default"):
        fsm.validate()


def test_finalized_module_rejects_additions():
    m = minimal_module()
    m.finalize()
    with pytest.raises(RuntimeError, match="finalized"):
        m.port("late")


def test_arc_signal_lookup():
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B", cond=Sig("x"))
    assert fsm.arc_signal("A", "B").name == "f__t0__A__B"
    with pytest.raises(KeyError):
        fsm.arc_signal("B", "A")


def test_entry_signal_combines_arcs():
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "C", cond=Sig("x"))
    fsm.transition("B", "C")
    expr = fsm.entry_signal("C")
    assert expr.signals() == {"f__t0__A__C", "f__t1__B__C"}


def test_counter_validation():
    with pytest.raises(ValueError, match="load_value"):
        Counter("c", mode="down", load_cond=Sig("x"))
    with pytest.raises(ValueError, match="mode"):
        Counter("c", mode="sideways")
    with pytest.raises(ValueError, match="step"):
        down_counter("c", load_cond=Sig("x"), load_value=Sig("y"), step=0)


def test_datapath_block_validation():
    m = minimal_module()
    m.datapath(DatapathBlock("dp", cells={"MUL": 2}, inputs=("ghost",)))
    with pytest.raises(ValueError, match="ghost"):
        m.finalize()


def test_datapath_unknown_state_rejected():
    m = minimal_module()
    m.datapath(DatapathBlock(
        "dp", cells={"MUL": 2}, active_states=(("f", "NOPE"),),
    ))
    with pytest.raises(ValueError, match="NOPE"):
        m.finalize()


def test_transition_wires_generated_on_finalize():
    m = minimal_module()
    m.finalize()
    assert "f__t0__A__B" in m.wires
