"""Unit tests for the expression AST."""

import pytest
from hypothesis import given, strategies as st

from repro.rtl.expr import (
    BinOp,
    Const,
    MemRead,
    Mux,
    Sig,
    UnOp,
    all_of,
    any_of,
    maximum,
    minimum,
    to_python,
    walk,
    wrap,
)


def test_const_eval():
    assert Const(42).eval({}) == 42


def test_const_rejects_non_int():
    with pytest.raises(TypeError):
        Const("x")


def test_sig_eval_reads_env():
    assert Sig("a").eval({"a": 7}) == 7


def test_sig_requires_name():
    with pytest.raises(ValueError):
        Sig("")


def test_operator_sugar_builds_tree():
    expr = (Sig("a") + 3) * Sig("b")
    assert expr.eval({"a": 2, "b": 10}) == 50


def test_comparison_returns_expr():
    expr = Sig("a") == 5
    assert isinstance(expr, BinOp)
    assert expr.eval({"a": 5}) == 1
    assert expr.eval({"a": 4}) == 0


def test_reflected_operators():
    assert (3 + Sig("a")).eval({"a": 4}) == 7
    assert (10 - Sig("a")).eval({"a": 4}) == 6
    assert (3 * Sig("a")).eval({"a": 4}) == 12


def test_shift_and_bitwise():
    env = {"a": 0b1010}
    assert (Sig("a") >> 1).eval(env) == 0b101
    assert (Sig("a") << 2).eval(env) == 0b101000
    assert (Sig("a") & 0b0110).eval(env) == 0b0010
    assert (Sig("a") | 0b0101).eval(env) == 0b1111
    assert (Sig("a") ^ 0b1111).eval(env) == 0b0101


def test_division_by_zero_yields_zero():
    assert BinOp("div", Sig("a"), Sig("b")).eval({"a": 5, "b": 0}) == 0
    assert BinOp("mod", Sig("a"), Sig("b")).eval({"a": 5, "b": 0}) == 0


def test_unop_not_and_bool():
    assert UnOp("not", Sig("a")).eval({"a": 0}) == 1
    assert UnOp("not", Sig("a")).eval({"a": 3}) == 0
    assert UnOp("bool", Sig("a")).eval({"a": 3}) == 1


def test_mux_selects():
    expr = Mux(Sig("s"), 10, 20)
    assert expr.eval({"s": 1}) == 10
    assert expr.eval({"s": 0}) == 20


def test_memread_in_range_and_out_of_range():
    env = {"__mem__m": [5, 6, 7], "i": 1}
    assert MemRead("m", Sig("i")).eval(env) == 6
    env["i"] = 99
    assert MemRead("m", Sig("i")).eval(env) == 0


def test_signals_collects_all_references():
    expr = Mux(Sig("s"), Sig("a") + Sig("b"), MemRead("m", Sig("i")))
    assert expr.signals() == {"s", "a", "b", "i", "__mem__m"}


def test_min_max_helpers():
    assert minimum(Sig("a"), 3).eval({"a": 5}) == 3
    assert maximum(Sig("a"), 3).eval({"a": 5}) == 5


def test_all_of_any_of():
    env = {"a": 2, "b": 0}
    assert all_of(Sig("a"), Sig("b")).eval(env) == 0
    assert any_of(Sig("a"), Sig("b")).eval(env) == 1
    with pytest.raises(ValueError):
        all_of()


def test_wrap_rejects_junk():
    with pytest.raises(TypeError):
        wrap(3.14)


def test_walk_visits_every_node():
    expr = (Sig("a") + 1) * (Sig("b") - 2)
    kinds = [type(node).__name__ for node in walk(expr)]
    assert kinds.count("BinOp") == 3
    assert kinds.count("Sig") == 2
    assert kinds.count("Const") == 2


@given(
    a=st.integers(min_value=0, max_value=1 << 16),
    b=st.integers(min_value=0, max_value=1 << 16),
    s=st.booleans(),
)
def test_to_python_matches_eval(a, b, s):
    """The compiled rendering agrees with the interpreter on all ops."""
    env = {"a": a, "b": b, "s": int(s), "__mem__m": [a, b]}
    exprs = [
        Sig("a") + Sig("b"),
        Sig("a") - Sig("b"),
        Sig("a") * Sig("b"),
        BinOp("div", Sig("a"), Sig("b")),
        BinOp("mod", Sig("a"), Sig("b")),
        Sig("a") & Sig("b"),
        Sig("a") | Sig("b"),
        Sig("a") ^ Sig("b"),
        Sig("a") >> 3,
        Sig("a") << 2,
        Sig("a") == Sig("b"),
        Sig("a") != Sig("b"),
        Sig("a") < Sig("b"),
        Sig("a") <= Sig("b"),
        Sig("a") > Sig("b"),
        Sig("a") >= Sig("b"),
        minimum(Sig("a"), Sig("b")),
        maximum(Sig("a"), Sig("b")),
        Mux(Sig("s"), Sig("a"), Sig("b")),
        UnOp("not", Sig("s")),
        UnOp("bool", Sig("a")),
        MemRead("m", BinOp("mod", Sig("a"), Const(2))),
    ]
    for expr in exprs:
        compiled = eval(to_python(expr), {}, {"env": env})
        assert compiled == expr.eval(env), to_python(expr)
