"""Compiled backend tests: cycle-exact equivalence with the interpreter."""

import time

import pytest

from repro.accelerators import get_design
from repro.rtl import Module, Simulation
from repro.rtl.compiled import CompiledExpr, compile_expr, compile_module
from repro.rtl.expr import Const, Mux, Sig
from repro.workloads import workload_for
from tests.conftest import build_toy, pack_item, toy_expected_cycles
from tests.rtl.test_simulator import Recorder


def test_compiled_expr_evaluates_like_original():
    expr = Mux(Sig("s"), Sig("a") * 3 + 1, Sig("b") - 2)
    compiled = CompiledExpr(expr)
    for env in ({"s": 1, "a": 4, "b": 9}, {"s": 0, "a": 4, "b": 9}):
        assert compiled.eval(env) == expr.eval(env)
    assert compiled.signals() == expr.signals()
    assert compiled.children() == expr.children()


def test_compile_expr_none_passthrough():
    assert compile_expr(None) is None


def test_compiled_expr_unwraps_nested():
    inner = CompiledExpr(Sig("a") + 1)
    outer = CompiledExpr(inner)
    assert outer.original is inner.original
    assert outer.eval({"a": 5}) == 6


def test_compile_module_requires_finalized():
    with pytest.raises(ValueError, match="finalized"):
        compile_module(Module("raw"))


def test_compiled_toy_is_cycle_exact():
    items = [pack_item(9, 0), pack_item(3, 1), pack_item(0, 0),
             pack_item(77, 1)]
    compiled = compile_module(build_toy())
    rec_c, rec_i = Recorder(), Recorder()

    sim = Simulation(compiled, listener=rec_c)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    result_c = sim.run()

    sim = Simulation(build_toy(), listener=rec_i)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    result_i = sim.run()

    assert result_c.cycles == result_i.cycles == toy_expected_cycles(items)
    assert result_c.state_cycles == result_i.state_cycles
    assert rec_c.transitions == rec_i.transitions
    assert rec_c.loads == rec_i.loads
    assert rec_c.resets == rec_i.resets


@pytest.mark.parametrize("name", ["h264", "djpeg", "aes"])
def test_compiled_benchmark_designs_cycle_exact(name):
    design = get_design(name)
    module = design.build()
    compiled = compile_module(module)
    workload = workload_for(name, scale=0.1)
    for item in workload.test[:2]:
        job = design.encode_job(item)
        results = []
        for mod in (module, compiled):
            sim = Simulation(mod, track_state_cycles=True)
            sim.load(*job.as_pair())
            results.append(sim.run())
        assert results[0].cycles == results[1].cycles
        assert results[0].state_cycles == results[1].state_cycles


def test_compiled_backend_is_faster_on_h264():
    """Not a strict perf assertion — just that compilation doesn't make
    things slower (it is typically 2-4x faster)."""
    design = get_design("h264")
    module = design.build()
    compiled = compile_module(module)
    job = design.encode_job(workload_for("h264", scale=0.1).test[0])

    def timed(mod):
        sim = Simulation(mod, track_state_cycles=False)
        sim.load(*job.as_pair())
        start = time.perf_counter()
        sim.run()
        return time.perf_counter() - start

    timed(module), timed(compiled)  # warm caches
    t_interp = min(timed(module) for _ in range(2))
    t_compiled = min(timed(compiled) for _ in range(2))
    assert t_compiled < t_interp * 1.2
