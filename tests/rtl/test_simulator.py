"""Simulator tests: correctness, fast-forward equivalence, events."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

import pytest

from repro.rtl import Fsm, Listener, Module, Sig, Simulation, down_counter
from tests.conftest import build_toy, pack_item, toy_expected_cycles


class Recorder(Listener):
    def __init__(self):
        self.transitions = []
        self.loads = []
        self.resets = []

    def on_transition(self, fsm, src, dst):
        self.transitions.append((fsm, src, dst))

    def on_counter_load(self, counter, value):
        self.loads.append((counter, value))

    def on_counter_reset(self, counter, value):
        self.resets.append((counter, value))


def run_toy(items, fast_forward=True, listener=None):
    sim = Simulation(build_toy(), listener=listener,
                     fast_forward=fast_forward)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    return sim.run()


def test_toy_cycle_count_matches_closed_form():
    items = [pack_item(5, 0), pack_item(3, 1), pack_item(0, 0)]
    result = run_toy(items)
    assert result.finished
    assert result.cycles == toy_expected_cycles(items)


def test_toy_without_fast_forward_matches():
    items = [pack_item(7, 1), pack_item(2, 0)]
    slow = run_toy(items, fast_forward=False)
    fast = run_toy(items, fast_forward=True)
    assert slow.finished and fast.finished
    assert slow.cycles == fast.cycles
    assert slow.state_cycles == fast.state_cycles


def test_empty_job_times_out_in_idle():
    sim = Simulation(build_toy())
    sim.load(inputs={"n_items": 0}, memories={"items": []})
    result = sim.run(max_cycles=50)
    assert not result.finished
    assert result.cycles == 50


def test_listener_sees_transitions_and_loads():
    items = [pack_item(5, 0), pack_item(3, 1)]
    rec = Recorder()
    result = run_toy(items, listener=rec)
    assert result.finished
    assert ("ctrl", "IDLE", "FETCH") in rec.transitions
    assert rec.transitions.count(("ctrl", "FETCH", "COMP_A")) == 1
    assert rec.transitions.count(("ctrl", "FETCH", "COMP_B")) == 1
    assert ("c_a", 15) in rec.loads   # 5 * 3
    assert ("c_b", 21) in rec.loads   # 3 * 7
    # The up counter resets once at job start.
    assert rec.resets == [("items_done", 0)]


def test_listener_events_identical_with_and_without_fast_forward():
    items = [pack_item(9, 0), pack_item(1, 1), pack_item(4, 1)]
    rec_fast, rec_slow = Recorder(), Recorder()
    run_toy(items, fast_forward=True, listener=rec_fast)
    run_toy(items, fast_forward=False, listener=rec_slow)
    assert rec_fast.transitions == rec_slow.transitions
    assert rec_fast.loads == rec_slow.loads
    assert rec_fast.resets == rec_slow.resets


def test_up_counter_counts_items():
    items = [pack_item(2, 0)] * 4
    sim = Simulation(build_toy())
    sim.load(inputs={"n_items": 4}, memories={"items": items})
    sim.run()
    assert sim.state["items_done"] == 4


def test_state_cycles_accounting():
    items = [pack_item(5, 0)]
    result = run_toy(items)
    # COMP_A holds for load+1 cycles: counter goes 15 -> 0 then exits.
    assert result.cycles_in("ctrl", "COMP_A") == 16
    assert result.cycles_in("ctrl", "FETCH") == 1
    assert result.cycles_in("ctrl", "EMIT") == 1
    assert result.cycles_in("ctrl", "COMP_B") == 0


def test_reset_restores_initial_state():
    items = [pack_item(5, 0)]
    sim = Simulation(build_toy())
    sim.load(inputs={"n_items": 1}, memories={"items": items})
    first = sim.run()
    sim.reset()
    sim.load(inputs={"n_items": 1}, memories={"items": items})
    second = sim.run()
    assert first.cycles == second.cycles


def test_load_rejects_unknown_port_and_memory():
    sim = Simulation(build_toy())
    with pytest.raises(KeyError):
        sim.load(inputs={"nope": 1})
    with pytest.raises(KeyError):
        sim.load(memories={"nope": []})


def test_unfinalized_module_rejected():
    m = Module("raw")
    m.set_done(Sig("x") == 0)
    with pytest.raises(ValueError):
        Simulation(m)


def test_elide_skips_wait_states():
    items = [pack_item(50, 0), pack_item(50, 1)]
    full = run_toy(items)
    sim = Simulation(build_toy(),
                     elide={("ctrl", "COMP_A"), ("ctrl", "COMP_B")})
    sim.load(inputs={"n_items": 2}, memories={"items": items})
    elided = sim.run()
    assert elided.finished
    assert elided.cycles < full.cycles
    # Each item: FETCH(1) + COMP(1, wait skipped) + EMIT(1); +1 for start.
    assert elided.cycles == 1 + 3 * len(items)


def test_elide_preserves_transition_sequence():
    items = [pack_item(9, 0), pack_item(4, 1)]
    rec_full, rec_elided = Recorder(), Recorder()
    run_toy(items, listener=rec_full)
    sim = Simulation(build_toy(), listener=rec_elided,
                     elide={("ctrl", "COMP_A"), ("ctrl", "COMP_B")})
    sim.load(inputs={"n_items": 2}, memories={"items": items})
    sim.run()
    assert rec_full.transitions == rec_elided.transitions
    assert rec_full.loads == rec_elided.loads


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 200), st.integers(0, 1)),
    min_size=1, max_size=12,
))
def test_fast_forward_is_exact_property(items_spec):
    """Fast-forwarded runs are cycle-for-cycle identical to stepping."""
    items = [pack_item(w, m) for w, m in items_spec]
    fast = run_toy(items, fast_forward=True)
    slow = run_toy(items, fast_forward=False)
    assert fast.finished and slow.finished
    assert fast.cycles == slow.cycles == toy_expected_cycles(items)
    assert fast.state_cycles == slow.state_cycles


@settings(max_examples=25, deadline=None)
@given(st.lists(
    st.tuples(st.integers(0, 120), st.integers(0, 1)),
    min_size=1, max_size=8,
))
def test_final_architectural_state_identical(items_spec):
    items = [pack_item(w, m) for w, m in items_spec]
    sims = []
    for ff in (True, False):
        sim = Simulation(build_toy(), fast_forward=ff)
        sim.load(inputs={"n_items": len(items)}, memories={"items": items})
        sim.run()
        sims.append(sim)
    assert sims[0].state == sims[1].state


def test_dynamic_wait_duration():
    """A dynamic wait stalls for exactly the evaluated duration."""
    m = Module("dyn")
    m.port("dur", 16)
    fsm = Fsm("f", initial="S0")
    fsm.transition("S0", "W")
    fsm.transition("W", "DONE")
    fsm.dynamic_wait("W", Sig("dur"))
    m.fsm(fsm)
    m.set_done(Sig("f__state") == fsm.code_of("DONE"))
    m.finalize()

    for duration in (0, 1, 5, 100):
        for ff in (True, False):
            sim = Simulation(m, fast_forward=ff)
            sim.load(inputs={"dur": duration})
            result = sim.run()
            assert result.finished
            # S0(1) + W(duration + 1) cycles.
            assert result.cycles == duration + 2, (duration, ff)


def test_wait_counter_with_step_greater_than_one():
    m = Module("step2")
    m.port("n", 16)
    fsm = Fsm("f", initial="S0")
    fsm.transition("S0", "W")
    fsm.transition("W", "DONE")
    fsm.wait_state("W", "cnt")
    m.fsm(fsm)
    m.counter(down_counter(
        "cnt", load_cond=fsm.arc_signal("S0", "W"),
        load_value=Sig("n"), width=16, step=3,
    ))
    m.set_done(Sig("f__state") == fsm.code_of("DONE"))
    m.finalize()

    for n in (0, 1, 3, 7, 9):
        cycles = []
        for ff in (True, False):
            sim = Simulation(m, fast_forward=ff)
            sim.load(inputs={"n": n})
            result = sim.run()
            assert result.finished
            cycles.append(result.cycles)
        assert cycles[0] == cycles[1], n
        expected_wait = -(-n // 3)  # ceil
        assert cycles[0] == 1 + expected_wait + 1
