"""Batch (lockstep numpy) backend: drivers, edge cases and telemetry.

Cross-backend bit-exactness lives in ``test_fuzz_backends.py``; this
file covers the batch-specific surfaces — empty and width-1 batches,
unfinished rows, elide variants, compaction under divergent job
lengths, listener compatibility, program caching/pickling, the width
guard, and the ``sim.batch.*`` observability counters.
"""

import pickle

import numpy as np
import pytest

from repro.obs import session
from repro.rtl import (
    BatchScalarSimulation,
    BatchSimulation,
    Module,
    Sig,
    Simulation,
    StepSimulation,
    compile_batch_stepper,
    make_simulation,
    set_default_backend,
)
from tests.conftest import build_toy, pack_item, toy_expected_cycles


def _toy_jobs(specs):
    jobs = []
    for spec in specs:
        items = [pack_item(w, m) for w, m in spec]
        jobs.append(({"n_items": len(items)}, {"items": items}))
    return jobs


def test_empty_batch():
    result = BatchSimulation(build_toy()).run_jobs([])
    assert result.rows == 0
    assert result.cycles.shape == (0,)
    assert result.finished.shape == (0,)
    assert result.occupancy == 1.0


def test_cycles_match_closed_form():
    specs = [[(5, 0)], [(3, 1), (2, 0)], [(1, 1)] * 4, [(9, 0), (9, 1)]]
    result = BatchSimulation(build_toy()).run_jobs(_toy_jobs(specs))
    assert result.finished.all()
    want = [toy_expected_cycles([pack_item(w, m) for w, m in spec])
            for spec in specs]
    assert result.cycles.tolist() == want


def test_unfinished_rows_are_reported_not_raised():
    # n_items=0 never leaves IDLE; the batch driver reports it via
    # ``finished`` and leaves raising to the caller.
    jobs = _toy_jobs([[(2, 0)]]) + [({"n_items": 0}, {"items": []})]
    result = BatchSimulation(build_toy()).run_jobs(jobs, max_cycles=500)
    assert bool(result.finished[0]) and not bool(result.finished[1])
    assert int(result.cycles[1]) == 500


def test_elide_variant_matches_interp():
    module = build_toy()
    elide = (("ctrl", "COMP_B"),)
    jobs = _toy_jobs([[(3, 1), (2, 0)], [(7, 1)] * 3])
    batch = BatchSimulation(module, elide=elide)
    result = batch.run_jobs(jobs)
    for row, (inputs, memories) in enumerate(jobs):
        sim = Simulation(module, elide=elide)
        sim.load(inputs=inputs, memories=memories)
        ref = sim.run()
        assert ref.finished
        assert int(result.cycles[row]) == ref.cycles


def test_compaction_under_divergent_lengths():
    # One long row among many short ones: the driver compacts retired
    # rows away and occupancy stays well above the no-compaction bound.
    specs = [[(200, 1)] * 6] + [[(1, 0)]] * 31
    result = BatchSimulation(build_toy()).run_jobs(_toy_jobs(specs))
    assert result.finished.all()
    want = [toy_expected_cycles([pack_item(w, m) for w, m in spec])
            for spec in specs]
    assert result.cycles.tolist() == want
    assert 0.0 < result.occupancy <= 1.0
    # 31 short rows retire almost immediately; without compaction the
    # long row would drag occupancy below 1/32.
    assert result.occupancy > 1.0 / 32.0


def test_program_cache_and_variants():
    module = build_toy()
    a = compile_batch_stepper(module)
    assert compile_batch_stepper(module) is a
    b = compile_batch_stepper(module, fast_forward=False)
    assert b is not a
    assert "_jump" in a.source and "_jump" not in b.source


def test_program_pickle_roundtrip():
    module = build_toy()
    program = compile_batch_stepper(module, track_state_cycles=True)
    clone = pickle.loads(pickle.dumps(program))
    assert clone.scalar_names == program.scalar_names
    assert clone.event_layout == program.event_layout
    assert clone.source == program.source


def test_scalar_adapter_rejects_incompatible_listener():
    class Ordered:
        def on_transition(self, fsm, src, dst):
            pass

    sim = BatchScalarSimulation(build_toy(), listener=Ordered())
    sim.load(inputs={"n_items": 1}, memories={"items": [pack_item(1, 0)]})
    with pytest.raises(TypeError, match="absorb_batch_events"):
        sim.run()


def test_make_simulation_falls_back_for_incompatible_listener():
    class Ordered:
        def on_transition(self, fsm, src, dst):
            pass

    module = build_toy()
    try:
        set_default_backend("batch")
        assert isinstance(make_simulation(module, listener=Ordered()),
                          StepSimulation)
        assert isinstance(make_simulation(module),
                          BatchScalarSimulation)
    finally:
        set_default_backend(None)


def test_width_guard_rejects_wide_registers():
    m = Module("wide")
    m.port("go", 1)
    m.reg("big", 63)
    m.set_done(Sig("go") == 1)
    module = m.finalize()
    with pytest.raises(ValueError, match="63 bits"):
        compile_batch_stepper(module)


def test_batch_obs_counters(tmp_path):
    jobs = _toy_jobs([[(5, 0)], [(3, 1)], [(2, 0)] * 2])
    with session(run_dir=tmp_path / "run", command="t") as obs:
        BatchSimulation(build_toy()).run_jobs(jobs)
        counters = obs.metrics.counters
        assert counters["sim.batch.runs"] == 1.0
        assert counters["sim.batch.rows"] == 3.0
        assert counters["sim.batch.lockstep_cycles"] > 0
        gauge = obs.metrics.gauges["sim.batch.occupancy"]
        assert 0.0 < gauge <= 1.0


def test_scalar_adapter_resumes_mid_run():
    # Partial run, then resume: the adapter must round-trip cycle and
    # architectural state through the columns exactly.
    module = build_toy()
    items = [pack_item(6, 1), pack_item(2, 0)]
    ref = StepSimulation(module)
    ref.load(inputs={"n_items": 2}, memories={"items": items})
    total = ref.run().cycles

    sim = BatchScalarSimulation(module)
    sim.load(inputs={"n_items": 2}, memories={"items": items})
    first = sim.run(max_cycles=total // 2)
    assert not first.finished
    second = sim.run()
    assert second.finished
    assert second.cycles == total
