"""Direct tests for module-to-module transforms (derive_module)."""

import pytest

from repro.rtl import Simulation, derive_module
from tests.conftest import build_toy, pack_item, toy_expected_cycles


def run(module, items):
    sim = Simulation(module)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    return sim.run(max_cycles=200_000)


def test_plain_clone_is_equivalent():
    original = build_toy()
    clone = derive_module(original)
    items = [pack_item(9, 0), pack_item(4, 1)]
    assert run(clone, items).cycles == run(original, items).cycles
    assert clone.name == "toy__derived"


def test_unwait_removes_the_waiting():
    original = build_toy()
    unwaited = derive_module(
        original, unwait={("ctrl", "COMP_A"), ("ctrl", "COMP_B")})
    items = [pack_item(100, 0), pack_item(100, 1)]
    full = run(original, items).cycles
    fast = run(unwaited, items).cycles
    assert full == toy_expected_cycles(items)
    # Unwaited: each COMP state takes exactly one cycle.
    assert fast == 1 + 3 * len(items)


def test_unwait_preserves_state_codes():
    original = build_toy()
    unwaited = derive_module(original, unwait={("ctrl", "COMP_A")})
    assert unwaited.fsms["ctrl"].states == original.fsms["ctrl"].states


def test_drop_counter_of_live_wait_rejected():
    original = build_toy()
    with pytest.raises(ValueError, match="still waits on it"):
        derive_module(original, drop_counters={"c_a"})


def test_drop_counter_after_unwait_allowed():
    original = build_toy()
    derived = derive_module(
        original,
        unwait={("ctrl", "COMP_A")},
        drop_counters={"c_a"},
    )
    assert "c_a" not in derived.counters
    assert "c_b" in derived.counters
    items = [pack_item(5, 0)]
    assert run(derived, items).finished


def test_drop_reg_strips_entry_actions():
    """Dropping a register removes the arc actions that wrote it."""
    original = build_toy()
    # idx is read by arc conditions, so dropping it alone must fail
    # validation — proving the reference checker guards the transform.
    with pytest.raises(ValueError, match="idx"):
        derive_module(original, drop_regs={"idx"})


def test_drop_datapath():
    derived = derive_module(build_toy(), drop_datapath=True)
    assert derived.datapath_blocks == []
    items = [pack_item(3, 1)]
    assert run(derived, items).cycles == toy_expected_cycles(items)


def test_drop_memories_rejected_when_still_read():
    with pytest.raises(ValueError, match="__mem__items"):
        derive_module(build_toy(), drop_memories={"items"})


def test_drop_fsm_rejected_when_done_reads_it():
    with pytest.raises(ValueError, match="ctrl"):
        derive_module(build_toy(), drop_fsms={"ctrl"})


def test_drop_update_by_index():
    """Update indices refer to module.updates order."""
    from repro.rtl import Fsm, Module, Sig

    m = Module("u")
    start = m.port("start", 1)
    m.reg("a", 8)
    m.reg("b", 8)
    m.update("a", 1, cond=start)
    m.update("b", 2, cond=start)
    fsm = Fsm("f", initial="S")
    fsm.transition("S", "T", cond=start)
    m.fsm(fsm)
    m.set_done(Sig("f__state") == fsm.code_of("T"))
    m.finalize()

    derived = derive_module(m, drop_updates={0})
    sim = Simulation(derived)
    sim.load(inputs={"start": 1})
    sim.run(max_cycles=10)
    assert sim.state["a"] == 0  # the dropped update never fired
    assert sim.state["b"] == 2
