"""VCD waveform export tests."""

import io
import re

import pytest

from repro.rtl import Module, Simulation
from repro.rtl.wave import VcdWriter, _id_for
from tests.conftest import build_toy, pack_item


def dump_toy(items, signals=None, fast_forward=True):
    module = build_toy()
    stream = io.StringIO()
    writer = VcdWriter(module, stream, signals=signals)
    sim = Simulation(module, listener=writer, fast_forward=fast_forward)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    result = sim.run()
    writer.finish(sim.cycle)
    return stream.getvalue(), result


def test_id_allocation_unique():
    ids = [_id_for(i) for i in range(500)]
    assert len(set(ids)) == 500
    assert all(" " not in i for i in ids)


def test_header_and_vars():
    text, _ = dump_toy([pack_item(3, 0)])
    assert "$timescale 1 ns $end" in text
    assert "$scope module toy $end" in text
    assert re.search(r"\$var wire 16 \S+ c_a \$end", text)
    assert re.search(r"\$var wire 16 \S+ ctrl__state \$end", text)
    assert "$enddefinitions $end" in text
    assert "$dumpvars" in text


def test_timestamps_monotonic():
    text, result = dump_toy([pack_item(20, 1), pack_item(5, 0)])
    stamps = [int(m) for m in re.findall(r"^#(\d+)$", text, re.M)]
    assert stamps == sorted(stamps)
    assert stamps[-1] == result.cycles


def test_signal_filter():
    text, _ = dump_toy([pack_item(3, 0)], signals=["c_a"])
    assert " c_a $end" in text
    assert "items_done" not in text
    with pytest.raises(KeyError, match="not architectural"):
        dump_toy([pack_item(3, 0)], signals=["ghost"])


def test_only_changes_are_dumped():
    """After the initial dump, each timestamp carries only changed
    signals — counters parked at zero do not repeat."""
    text, _ = dump_toy([pack_item(4, 0)])
    body = text.split("$end\n")[-1]
    # c_b never loads for a mode-0 item: its id appears at most once
    # after the initial dump.
    cb_id = re.search(r"\$var wire 16 (\S+) c_b \$end", text).group(1)
    assert body.count(f" {cb_id}\n") == 0


def test_fast_forward_and_stepped_dumps_agree_at_common_instants():
    items = [pack_item(9, 1)]
    fast, _ = dump_toy(items, fast_forward=True)
    slow, _ = dump_toy(items, fast_forward=False)

    def final_values(text):
        values = {}
        for line in text.splitlines():
            m = re.match(r"b([01]+) (\S+)$", line)
            if m:
                values[m.group(2)] = m.group(1)
        return values

    assert final_values(fast) == final_values(slow)


def test_writer_requires_finalized():
    with pytest.raises(ValueError, match="finalized"):
        VcdWriter(Module("raw"), io.StringIO())
