"""ItemLoop idiom tests: a complete mini-design in a dozen lines."""

import pytest

from repro.analysis import discover_features, record_jobs
from repro.rtl import Module, Simulation, synthesize
from repro.rtl.idioms import ItemLoop
from repro.slicing import build_slice


def build_rle():
    """A run-length expander: per item, 9 cycles per symbol + 20."""
    m = Module("rle")
    loop = ItemLoop(m, mem_name="runs", mem_depth=64, mem_width=16)
    length = loop.field("length", offset=0, bits=8)
    symbol_cost = loop.field("symbol_cost", offset=8, bits=4)
    loop.step_stage("FETCH")
    loop.wait_stage("EXPAND", length * 9 + 20)
    loop.wait_stage("WRITE", length * (symbol_cost + 1))
    return loop.finish()


def pack(length, cost):
    return (cost & 0xF) << 8 | (length & 0xFF)


def test_itemloop_builds_and_runs():
    module = build_rle()
    items = [pack(10, 2), pack(3, 0)]
    sim = Simulation(module)
    sim.load(inputs={"n_items": 2}, memories={"runs": items})
    result = sim.run(max_cycles=100_000)
    assert result.finished
    # Per item: FETCH(1) + EXPAND(9L+20+1) + WRITE(L(c+1)+1) + EMIT(1),
    # plus IDLE->first arc.
    expected = 1
    for length, cost in ((10, 2), (3, 0)):
        expected += 1 + (9 * length + 20 + 1) + (length * (cost + 1) + 1) + 1
    assert result.cycles == expected


def test_itemloop_detection_and_features():
    module = build_rle()
    features = discover_features(module, synthesize(module))
    names = set(features.names())
    assert "aivs:c_expand" in names
    assert "aivs:c_write" in names
    assert "apvs:items_done" in names
    assert any(n.startswith("stc:ctrl:") for n in names)


def test_itemloop_slices_cleanly():
    module = build_rle()
    features = discover_features(module, synthesize(module))
    hw_slice = build_slice(module, features)
    items = [pack(50, 3)] * 3
    jobs = [({"n_items": 3}, {"runs": items})]
    full = record_jobs(module, features, jobs)
    sliced = record_jobs(hw_slice.module, features, jobs,
                         ignore_unknown_inputs=True)
    assert (full.x == sliced.x).all()
    assert sliced.cycles[0] < full.cycles[0] / 10


def test_itemloop_validation():
    m = Module("empty")
    loop = ItemLoop(m, mem_name="d", mem_depth=8)
    with pytest.raises(ValueError, match="at least one stage"):
        loop.finish()

    m2 = Module("x")
    loop2 = ItemLoop(m2, mem_name="d", mem_depth=8)
    loop2.step_stage("A")
    loop2.finish()
    with pytest.raises(RuntimeError, match="finished"):
        loop2.step_stage("B")


def test_itemloop_dynamic_stage_invisible():
    m = Module("dynny")
    loop = ItemLoop(m, mem_name="d", mem_depth=8, mem_width=8)
    f = loop.field("f", offset=0, bits=8)
    loop.step_stage("FETCH")
    loop.dynamic_stage("SERIAL", f * 5)
    module = loop.finish()
    features = discover_features(module, synthesize(module))
    # STC features see the stage's arcs, but no counter features exist
    # for its duration (the stall is opaque).
    assert any(n.startswith("stc:") and "SERIAL" in n
               for n in features.names())
    assert not any(n.startswith(("ic:", "aivs:", "apvs:"))
                   and "serial" in n.lower()
                   for n in features.names())
    sim = Simulation(module)
    sim.load(inputs={"n_items": 1}, memories={"d": [4]})
    result = sim.run(max_cycles=10_000)
    assert result.finished
    # IDLE->FETCH(1) + FETCH(1) + SERIAL(20+1) + EMIT(1).
    assert result.cycles == 1 + 1 + 21 + 1
