"""Stepjit backend tests: cycle-exactness, listeners, pickling, cache."""

import pickle

import pytest

from repro.accelerators import get_design
from repro.obs import session
from repro.rtl import (
    Module,
    Simulation,
    StepSimulation,
    compile_stepper,
    make_simulation,
    resolve_backend,
    set_default_backend,
)
from repro.workloads import workload_for
from tests.conftest import build_toy, pack_item, toy_expected_cycles
from tests.rtl.test_simulator import Recorder

ITEMS = [pack_item(9, 0), pack_item(3, 1), pack_item(0, 0),
         pack_item(77, 1), pack_item(255, 1)]


def _run(module, cls, items=ITEMS, **kwargs):
    sim = cls(module, **kwargs)
    sim.load(inputs={"n_items": len(items)}, memories={"items": items})
    result = sim.run()
    return sim, result


@pytest.mark.parametrize("fast_forward", [True, False])
def test_stepjit_toy_cycle_exact(fast_forward):
    module = build_toy()
    sim_i, res_i = _run(module, Simulation, fast_forward=fast_forward)
    sim_s, res_s = _run(module, StepSimulation, fast_forward=fast_forward)
    assert res_s.cycles == res_i.cycles == toy_expected_cycles(ITEMS)
    assert res_s.finished and res_i.finished
    assert sim_s.state == sim_i.state
    assert sim_s.state_cycles == sim_i.state_cycles
    assert sim_s.ff_jumps == sim_i.ff_jumps
    assert sim_s._fsm_state == sim_i._fsm_state


def test_stepjit_listener_sequences_match_interpreter():
    module = build_toy()
    rec_i, rec_s = Recorder(), Recorder()
    _run(module, Simulation, listener=rec_i)
    _run(module, StepSimulation, listener=rec_s)
    assert rec_s.transitions == rec_i.transitions
    assert rec_s.loads == rec_i.loads
    assert rec_s.resets == rec_i.resets


def test_stepjit_wants_cycles_snapshots_match():
    class Tracer(Recorder):
        wants_cycles = True

        def __init__(self):
            super().__init__()
            self.snaps = []

        def on_cycle(self, cycle, state):
            self.snaps.append((cycle, dict(state)))

    items = [pack_item(4, 0), pack_item(2, 1)]
    module = build_toy()
    rec_i, rec_s = Tracer(), Tracer()
    _run(module, Simulation, items=items, listener=rec_i)
    _run(module, StepSimulation, items=items, listener=rec_s)
    assert rec_s.snaps == rec_i.snaps


def test_stepjit_elide_parity():
    module = build_toy()
    elide = {("ctrl", "COMP_A"), ("ctrl", "COMP_B")}
    sim_i, res_i = _run(module, Simulation, elide=elide)
    sim_s, res_s = _run(module, StepSimulation, elide=elide)
    assert res_s.cycles == res_i.cycles < toy_expected_cycles(ITEMS)
    assert sim_s.state == sim_i.state
    assert sim_s.state_cycles == sim_i.state_cycles


def test_stepjit_state_cycles_dict_identity_preserved():
    # flow/evaluate holds sim.state_cycles across jobs and clear()s it;
    # run() must mutate that same mapping, not rebind it.
    module = build_toy()
    sim = StepSimulation(module)
    cells = sim.state_cycles
    sim.load(inputs={"n_items": 2},
             memories={"items": [pack_item(3, 0), pack_item(1, 1)]})
    result = sim.run()
    assert sim.state_cycles is cells
    assert result.state_cycles == cells and cells


def test_stepjit_program_cache_and_variants():
    module = build_toy()
    a = compile_stepper(module)
    b = compile_stepper(module)
    assert a is b
    c = compile_stepper(module, track_state_cycles=False)
    assert c is not a
    # Listener machinery is compiled in only when asked for.
    assert "on_transition" not in a.source and "_lt" not in a.source
    d = compile_stepper(module, has_listener=True)
    assert "_lt(" in d.source


def test_stepjit_program_pickle_roundtrip():
    module = build_toy()
    program = compile_stepper(module)
    clone = pickle.loads(pickle.dumps(program))
    assert clone.source == program.source
    assert clone.scalar_names == program.scalar_names
    # The regenerated function must actually run.
    sim = StepSimulation(clone.module)
    sim.load(inputs={"n_items": len(ITEMS)}, memories={"items": ITEMS})
    assert sim.run().cycles == toy_expected_cycles(ITEMS)


def test_stepjit_simulation_pickles_like_interpreter():
    sim = StepSimulation(build_toy())
    clone = pickle.loads(pickle.dumps(sim))
    clone.load(inputs={"n_items": len(ITEMS)}, memories={"items": ITEMS})
    assert clone.run().cycles == toy_expected_cycles(ITEMS)


def test_stepjit_requires_finalized_module():
    with pytest.raises(ValueError, match="finalized"):
        compile_stepper(Module("raw"))


def test_stepjit_emits_sim_metrics(tmp_path):
    with session(run_dir=tmp_path / "run", command="unit test") as obs:
        _run(build_toy(), StepSimulation)
        counters = obs.metrics.snapshot()["counters"]
    assert counters["sim.stepjit.runs"] == 1.0
    assert counters["sim.stepjit.cycles"] == toy_expected_cycles(ITEMS)
    assert counters["sim.stepjit.ff_jumps"] > 0
    assert counters["sim.stepjit.compiles"] >= 1.0
    assert counters["sim.stepjit.codegen_s"] > 0.0


@pytest.mark.parametrize("name", ["h264", "djpeg", "aes"])
def test_stepjit_benchmark_designs_cycle_exact(name):
    design = get_design(name)
    module = design.build()
    workload = workload_for(name, scale=0.1)
    for item in workload.test[:2]:
        job = design.encode_job(item)
        results = []
        for cls in (Simulation, StepSimulation):
            sim = cls(module, track_state_cycles=True)
            sim.load(*job.as_pair())
            results.append((sim.run(), dict(sim.state)))
        (res_i, state_i), (res_s, state_s) = results
        assert res_i.cycles == res_s.cycles
        assert res_i.state_cycles == res_s.state_cycles
        assert state_i == state_s


def test_backend_resolution_precedence(monkeypatch):
    set_default_backend(None)
    monkeypatch.delenv("REPRO_BACKEND", raising=False)
    assert resolve_backend() == "stepjit"
    monkeypatch.setenv("REPRO_BACKEND", "interp")
    assert resolve_backend() == "interp"
    set_default_backend("compiled")
    try:
        assert resolve_backend() == "compiled"
        assert resolve_backend("interp") == "interp"
    finally:
        set_default_backend(None)
    with pytest.raises(ValueError, match="unknown simulation backend"):
        resolve_backend("verilator")


def test_make_simulation_picks_the_backend():
    module = build_toy()
    sim = make_simulation(module, backend="stepjit")
    assert isinstance(sim, StepSimulation)
    sim = make_simulation(module, backend="interp")
    assert type(sim) is Simulation
    assert sim.module is module
    sim = make_simulation(module, backend="compiled")
    assert type(sim) is Simulation
    assert sim.module is not module  # the compiled clone
    # The clone is cached: a second compiled sim reuses it.
    assert make_simulation(module, backend="compiled").module is sim.module
