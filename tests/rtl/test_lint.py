"""Design lint tests."""

import pytest

from repro.accelerators import ALL_DESIGNS, get_design
from repro.rtl import Const, Fsm, Module, Sig, down_counter
from repro.rtl.lint import errors_only, lint_module
from tests.conftest import build_toy


def rules(findings):
    return {f.rule for f in findings}


def test_requires_finalized():
    with pytest.raises(ValueError, match="finalized"):
        lint_module(Module("raw"))


def test_toy_design_is_clean():
    findings = lint_module(build_toy())
    assert errors_only(findings) == []
    assert "unused-wire" not in rules(findings)


@pytest.mark.parametrize("name", ALL_DESIGNS)
def test_benchmark_designs_have_no_errors(name):
    findings = lint_module(get_design(name).build())
    assert errors_only(findings) == [], [str(f) for f in findings]
    # Only djpeg and h264 carry dynamic waits (the info finding).
    infos = [f for f in findings if f.rule == "wide-dynamic-share"]
    if name in ("djpeg", "h264"):
        assert infos
    else:
        assert not infos


def _skeleton():
    m = Module("bad")
    start = m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "B", cond=start)
    m.fsm(fsm)
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    return m, fsm


def test_unreachable_state_flagged():
    m, fsm = _skeleton()
    fsm.add_state("GHOST")
    fsm.transition("GHOST", "B")  # leaves, but nothing enters
    m.finalize()
    findings = lint_module(m)
    assert any(f.rule == "unreachable-state"
               and "GHOST" in f.subject for f in findings)
    assert errors_only(findings)


def test_unloaded_counter_flagged():
    m, fsm = _skeleton()
    m.counter(down_counter("c", load_cond=Const(0), load_value=Sig("start")))
    m.finalize()
    findings = lint_module(m)
    assert any(f.rule == "unloaded-counter" for f in findings)


def test_wait_not_loaded_on_entry_flagged():
    m = Module("bad2")
    start = m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "W", cond=start)
    fsm.transition("W", "B")
    fsm.wait_state("W", "c")
    m.fsm(fsm)
    # Load condition references the port, not the entry arc.
    m.counter(down_counter("c", load_cond=start, load_value=Const(9)))
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    m.finalize()
    findings = lint_module(m)
    assert any(f.rule == "wait-not-loaded-on-entry" for f in findings)


def test_unused_wire_flagged():
    m, fsm = _skeleton()
    m.wire("orphan", Sig("start") + 1)
    m.finalize()
    findings = lint_module(m)
    assert any(f.rule == "unused-wire" and f.subject == "orphan"
               for f in findings)


def test_update_on_wait_state_flagged():
    m = Module("bad3")
    start = m.port("start", 1)
    fsm = Fsm("f", initial="A")
    fsm.transition("A", "W", cond=start)
    fsm.transition("W", "B")
    fsm.wait_state("W", "c")
    m.fsm(fsm)
    m.counter(down_counter(
        "c", load_cond=fsm.arc_signal("A", "W"), load_value=Const(5)))
    m.reg("x", 8)
    m.update("x", Sig("x") + 1, fsm="f", state="W")
    m.set_done(Sig("f__state") == fsm.code_of("B"))
    m.finalize()
    findings = lint_module(m)
    assert any(f.rule == "update-on-wait-state" for f in findings)


def test_finding_str():
    m, fsm = _skeleton()
    m.wire("orphan", Sig("start"))
    m.finalize()
    finding = [f for f in lint_module(m) if f.rule == "unused-wire"][0]
    assert "unused-wire" in str(finding) and "orphan" in str(finding)
