"""Differential fuzzing: all simulation backends must agree exactly.

Generates small random-but-terminating modules exercising the whole
semantic surface — multi-FSM designs with wait counters, dynamic
waits, up counters, arc actions, conditional update rules and
memory-driven guards — and asserts cycle count, final architectural
state, ``state_cycles`` and listener event sequences are identical
across ``interp``, ``compiled`` and ``stepjit``, with fast-forward
both on and off.

Termination by construction: every FSM is a forward chain of states
(arcs only advance), wait counters are loaded from bounded memory
words, and dynamic-wait durations are bounded expressions — so every
run finishes in at most a few thousand cycles.

The ``batch`` backend joins on the same modules: the width-1 scalar
adapter must match interp on cycles, final state, ``state_cycles``
and *aggregate* events (the lockstep kernel replaces the ordered
listener callbacks with per-row event totals), and the wide
``BatchSimulation`` path must match per-row against rows with
divergent inputs.
"""

import random
from collections import Counter

import pytest

from repro.rtl import (
    BatchScalarSimulation,
    BatchSimulation,
    Fsm,
    MemRead,
    Module,
    Sig,
    Simulation,
    StepSimulation,
    compile_module,
    down_counter,
    up_counter,
)
from tests.rtl.test_simulator import Recorder


def build_fuzz_module(seed: int) -> Module:
    """One random small module; same seed -> same design."""
    rng = random.Random(seed)
    m = Module(f"fuzz{seed}")
    m.port("n", 8)
    m.memory("data", depth=16, width=8)
    m.reg("acc", 16)
    m.reg("last", 8)
    cur = m.wire("cur", MemRead("data", Sig("step_count") & 0xF), 8)

    n_fsms = rng.randint(1, 2)
    final_guards = []
    for f_idx in range(n_fsms):
        fsm = Fsm(f"f{f_idx}", initial="S0")
        n_states = rng.randint(3, 6)
        names = [f"S{i}" for i in range(n_states)]
        waits = []
        for i in range(n_states - 1):
            src, dst = names[i], names[i + 1]
            kind = rng.choice(["plain", "guard", "wait", "dyn", "act"])
            if kind == "guard":
                fsm.transition(src, dst, cond=Sig("n") > rng.randint(0, 2))
                fsm.transition(src, dst)  # default keeps it moving
            elif kind == "act":
                fsm.transition(src, dst, actions=[
                    ("acc", Sig("acc") + cur),
                    ("last", cur),
                ])
            else:
                fsm.transition(src, dst)
            if kind == "wait":
                counter = f"w{f_idx}_{i}"
                fsm.wait_state(dst, counter)
                waits.append((counter, fsm.arc_signal(src, dst)))
            elif kind == "dyn":
                fsm.dynamic_wait(dst, (cur & 0x7) + rng.randint(0, 3))
        m.fsm(fsm)
        for counter, load in waits:
            m.counter(down_counter(
                counter, load_cond=load,
                load_value=(cur & 0xF) * rng.randint(1, 3),
                width=8,
            ))
        final_guards.append(
            Sig(fsm.state_signal) == fsm.code_of(names[-1]))

    m.counter(up_counter("step_count", reset_cond=0, width=8))
    if rng.random() < 0.5:
        m.counter(up_counter(
            "busy_count", reset_cond=Sig("n") == 0, width=8,
            enable=Sig("f0__state") != 0,
        ))
    if rng.random() < 0.5:
        m.update("acc", Sig("acc") + 1, cond=Sig("step_count") & 1)
    if rng.random() < 0.5:
        m.update("last", Sig("n"), fsm="f0", state="S1")

    done = final_guards[0]
    for guard in final_guards[1:]:
        done = done & guard
    m.set_done(done)
    return m.finalize()


def _agg_events(transitions, loads, resets):
    # Order-free event totals: what the batch backend's event columns
    # can express.  Zero entries never appear (Counter semantics).
    load_counts = Counter(name for name, _value in loads)
    load_sums = Counter()
    for name, value in loads:
        load_sums[name] += value
    reset_counts = Counter(name for name, _value in resets)
    reset_sums = Counter()
    for name, value in resets:
        reset_sums[name] += value
    def _nonzero(counter):
        return {key: value for key, value in counter.items() if value}
    return (dict(Counter(transitions)), _nonzero(load_counts),
            _nonzero(load_sums), _nonzero(reset_counts),
            _nonzero(reset_sums))


class _BatchEventSink:
    """Minimal batch-capable listener: keeps the raw event columns."""

    def __init__(self):
        self.events = None
        self.row = None

    def absorb_batch_events(self, events, row):
        self.events = events
        self.row = row


def _events_agg_from_batch(events, row):
    def _nonzero(mapping):
        return {key: int(column[row])
                for key, column in mapping.items() if column[row]}
    return (_nonzero(events.transition_counts),
            _nonzero(events.load_counts),
            _nonzero(events.load_value_sums),
            _nonzero(events.reset_counts),
            _nonzero(events.reset_value_sums))


def _run_one(module, cls, fast_forward):
    recorder = Recorder()
    sim = cls(module, listener=recorder, fast_forward=fast_forward)
    sim.load(inputs={"n": 3},
             memories={"data": [((7 * i) ^ 5) & 0xFF for i in range(16)]})
    result = sim.run(max_cycles=100_000)
    assert result.finished, f"{module.name} did not terminate"
    return {
        "cycles": result.cycles,
        "state": dict(sim.state),
        "state_cycles": dict(sim.state_cycles),
        "fsm_state": dict(sim._fsm_state),
        "events": (recorder.transitions, recorder.loads, recorder.resets),
        "events_agg": _agg_events(recorder.transitions, recorder.loads,
                                  recorder.resets),
    }


def _run_batch_one(module, fast_forward):
    sink = _BatchEventSink()
    sim = BatchScalarSimulation(module, listener=sink,
                                fast_forward=fast_forward)
    sim.load(inputs={"n": 3},
             memories={"data": [((7 * i) ^ 5) & 0xFF for i in range(16)]})
    result = sim.run(max_cycles=100_000)
    assert result.finished, f"{module.name} did not terminate (batch)"
    return {
        "cycles": result.cycles,
        "state": dict(sim.state),
        "state_cycles": dict(sim.state_cycles),
        "fsm_state": dict(sim._fsm_state),
        "events_agg": _events_agg_from_batch(sink.events, sink.row),
    }


@pytest.mark.parametrize("seed", range(25))
def test_backends_agree_on_random_modules(seed):
    module = build_fuzz_module(seed)
    compiled = compile_module(module)
    runs = {}
    for fast_forward in (True, False):
        runs["interp"] = _run_one(module, Simulation, fast_forward)
        runs["compiled"] = _run_one(compiled, Simulation, fast_forward)
        runs["stepjit"] = _run_one(module, StepSimulation, fast_forward)
        runs["batch"] = _run_batch_one(module, fast_forward)
        for backend in ("compiled", "stepjit", "batch"):
            fields = ("cycles", "state", "state_cycles", "fsm_state",
                      "events_agg" if backend == "batch" else "events")
            for field in fields:
                assert runs[backend][field] == runs["interp"][field], (
                    f"seed {seed}, ff={fast_forward}: {backend} "
                    f"disagrees with interp on {field}")


@pytest.mark.parametrize("seed", range(0, 25, 5))
def test_fast_forward_is_exact_per_backend(seed):
    """ff on/off must agree within each backend, not just across."""
    module = build_fuzz_module(seed)
    for cls in (Simulation, StepSimulation):
        on = _run_one(module, cls, True)
        off = _run_one(module, cls, False)
        for field in ("cycles", "state", "state_cycles", "events"):
            assert on[field] == off[field], (seed, cls.__name__, field)
    on = _run_batch_one(module, True)
    off = _run_batch_one(module, False)
    for field in ("cycles", "state", "state_cycles", "events_agg"):
        assert on[field] == off[field], (seed, "batch", field)


@pytest.mark.parametrize("seed", range(0, 25, 3))
def test_batch_wide_agrees_with_interp(seed):
    """Rows with divergent inputs: each must match its own interp run."""
    module = build_fuzz_module(seed)
    rng = random.Random(1000 + seed)
    jobs = []
    for _row in range(17):
        words = [rng.randrange(256) for _ in range(rng.randrange(1, 17))]
        jobs.append(({"n": rng.randrange(8)}, {"data": words}))
    batch = BatchSimulation(module, track_state_cycles=True)
    result = batch.run_jobs(jobs, max_cycles=100_000)
    assert result.finished.all()
    for row, (inputs, memories) in enumerate(jobs):
        recorder = Recorder()
        sim = Simulation(module, listener=recorder)
        sim.load(inputs=inputs, memories=memories)
        ref = sim.run(max_cycles=100_000)
        assert ref.finished
        assert int(result.cycles[row]) == ref.cycles, (seed, row)
        assert result.state_cycles_for(row) == dict(sim.state_cycles), (
            seed, row)
        want = _agg_events(recorder.transitions, recorder.loads,
                           recorder.resets)
        got = _events_agg_from_batch(result.events, row)
        assert got == want, (seed, row)
