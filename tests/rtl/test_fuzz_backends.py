"""Differential fuzzing: all simulation backends must agree exactly.

Generates small random-but-terminating modules exercising the whole
semantic surface — multi-FSM designs with wait counters, dynamic
waits, up counters, arc actions, conditional update rules and
memory-driven guards — and asserts cycle count, final architectural
state, ``state_cycles`` and listener event sequences are identical
across ``interp``, ``compiled`` and ``stepjit``, with fast-forward
both on and off.

Termination by construction: every FSM is a forward chain of states
(arcs only advance), wait counters are loaded from bounded memory
words, and dynamic-wait durations are bounded expressions — so every
run finishes in at most a few thousand cycles.
"""

import random

import pytest

from repro.rtl import (
    Fsm,
    MemRead,
    Module,
    Sig,
    Simulation,
    StepSimulation,
    compile_module,
    down_counter,
    up_counter,
)
from tests.rtl.test_simulator import Recorder


def build_fuzz_module(seed: int) -> Module:
    """One random small module; same seed -> same design."""
    rng = random.Random(seed)
    m = Module(f"fuzz{seed}")
    m.port("n", 8)
    m.memory("data", depth=16, width=8)
    m.reg("acc", 16)
    m.reg("last", 8)
    cur = m.wire("cur", MemRead("data", Sig("step_count") & 0xF), 8)

    n_fsms = rng.randint(1, 2)
    final_guards = []
    for f_idx in range(n_fsms):
        fsm = Fsm(f"f{f_idx}", initial="S0")
        n_states = rng.randint(3, 6)
        names = [f"S{i}" for i in range(n_states)]
        waits = []
        for i in range(n_states - 1):
            src, dst = names[i], names[i + 1]
            kind = rng.choice(["plain", "guard", "wait", "dyn", "act"])
            if kind == "guard":
                fsm.transition(src, dst, cond=Sig("n") > rng.randint(0, 2))
                fsm.transition(src, dst)  # default keeps it moving
            elif kind == "act":
                fsm.transition(src, dst, actions=[
                    ("acc", Sig("acc") + cur),
                    ("last", cur),
                ])
            else:
                fsm.transition(src, dst)
            if kind == "wait":
                counter = f"w{f_idx}_{i}"
                fsm.wait_state(dst, counter)
                waits.append((counter, fsm.arc_signal(src, dst)))
            elif kind == "dyn":
                fsm.dynamic_wait(dst, (cur & 0x7) + rng.randint(0, 3))
        m.fsm(fsm)
        for counter, load in waits:
            m.counter(down_counter(
                counter, load_cond=load,
                load_value=(cur & 0xF) * rng.randint(1, 3),
                width=8,
            ))
        final_guards.append(
            Sig(fsm.state_signal) == fsm.code_of(names[-1]))

    m.counter(up_counter("step_count", reset_cond=0, width=8))
    if rng.random() < 0.5:
        m.counter(up_counter(
            "busy_count", reset_cond=Sig("n") == 0, width=8,
            enable=Sig("f0__state") != 0,
        ))
    if rng.random() < 0.5:
        m.update("acc", Sig("acc") + 1, cond=Sig("step_count") & 1)
    if rng.random() < 0.5:
        m.update("last", Sig("n"), fsm="f0", state="S1")

    done = final_guards[0]
    for guard in final_guards[1:]:
        done = done & guard
    m.set_done(done)
    return m.finalize()


def _run_one(module, cls, fast_forward):
    recorder = Recorder()
    sim = cls(module, listener=recorder, fast_forward=fast_forward)
    sim.load(inputs={"n": 3},
             memories={"data": [((7 * i) ^ 5) & 0xFF for i in range(16)]})
    result = sim.run(max_cycles=100_000)
    assert result.finished, f"{module.name} did not terminate"
    return {
        "cycles": result.cycles,
        "state": dict(sim.state),
        "state_cycles": dict(sim.state_cycles),
        "fsm_state": dict(sim._fsm_state),
        "events": (recorder.transitions, recorder.loads, recorder.resets),
    }


@pytest.mark.parametrize("seed", range(25))
def test_backends_agree_on_random_modules(seed):
    module = build_fuzz_module(seed)
    compiled = compile_module(module)
    runs = {}
    for fast_forward in (True, False):
        runs["interp"] = _run_one(module, Simulation, fast_forward)
        runs["compiled"] = _run_one(compiled, Simulation, fast_forward)
        runs["stepjit"] = _run_one(module, StepSimulation, fast_forward)
        for backend in ("compiled", "stepjit"):
            for field in ("cycles", "state", "state_cycles",
                          "fsm_state", "events"):
                assert runs[backend][field] == runs["interp"][field], (
                    f"seed {seed}, ff={fast_forward}: {backend} "
                    f"disagrees with interp on {field}")


@pytest.mark.parametrize("seed", range(0, 25, 5))
def test_fast_forward_is_exact_per_backend(seed):
    """ff on/off must agree within each backend, not just across."""
    module = build_fuzz_module(seed)
    for cls in (Simulation, StepSimulation):
        on = _run_one(module, cls, True)
        off = _run_one(module, cls, False)
        for field in ("cycles", "state", "state_cycles", "events"):
            assert on[field] == off[field], (seed, cls.__name__, field)
