"""DOT exporter tests."""

import pytest

from repro.rtl import synthesize
from repro.rtl.dot import netlist_to_dot
from tests.conftest import build_toy


@pytest.fixture(scope="module")
def toy_netlist():
    return synthesize(build_toy())


def test_dot_basic_structure(toy_netlist):
    dot = netlist_to_dot(toy_netlist)
    assert dot.startswith('digraph "toy" {')
    assert dot.rstrip().endswith("}")
    assert "rankdir=LR" in dot
    # One node per cell, edges present.
    assert dot.count("[label=") == len(toy_netlist.cells)
    assert " -> " in dot


def test_dot_clusters_by_construct(toy_netlist):
    dot = netlist_to_dot(toy_netlist)
    assert 'label="counter:c_a"' in dot
    assert 'label="fsm:ctrl"' in dot
    assert 'label="memory:items"' in dot


def test_dot_highlight(toy_netlist):
    cone = toy_netlist.fanin_closure(["c_a"])
    dot = netlist_to_dot(toy_netlist, highlight=cone)
    assert dot.count("fillcolor") == len(cone)


def test_dot_size_guard(toy_netlist):
    with pytest.raises(ValueError, match="max_cells"):
        netlist_to_dot(toy_netlist, max_cells=3)
