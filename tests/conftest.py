"""Shared fixtures: a toy accelerator mirroring the paper's Figure 8.

The toy processes ``n_items`` items from a scratchpad.  Each item word
packs a work amount (bits 0-7) and a mode bit (bit 8).  Mode 0 items
take ``3*work`` cycles in COMP_A; mode 1 items take ``7*work`` cycles
in COMP_B — the input-dependent control decision that drives all of the
paper's machinery.
"""

from __future__ import annotations

import pytest

from repro.rtl import (
    DatapathBlock,
    Fsm,
    MemRead,
    Module,
    Sig,
    down_counter,
    up_counter,
)


def build_toy(with_datapath: bool = True) -> Module:
    """Build and finalize the toy accelerator."""
    m = Module("toy")
    n_items = m.port("n_items", 16)
    m.memory("items", depth=256, width=16)

    idx = m.reg("idx", 16)
    cur = m.wire("cur", MemRead("items", Sig("idx")), 16)
    work = m.wire("work", Sig("cur") & 0xFF, 8)
    mode = m.wire("mode", (Sig("cur") >> 8) & 1, 1)

    ctrl = Fsm("ctrl", initial="IDLE")
    ctrl.transition("IDLE", "FETCH", cond=n_items > 0)
    ctrl.transition("FETCH", "COMP_A", cond=mode == 0)
    ctrl.transition("FETCH", "COMP_B")
    ctrl.transition("COMP_A", "EMIT", actions=[("idx", idx + 1)])
    ctrl.transition("COMP_B", "EMIT", actions=[("idx", idx + 1)])
    ctrl.transition("EMIT", "FETCH", cond=idx < n_items)
    ctrl.transition("EMIT", "DONE")
    ctrl.wait_state("COMP_A", "c_a")
    ctrl.wait_state("COMP_B", "c_b")
    m.fsm(ctrl)

    m.counter(down_counter(
        "c_a", load_cond=ctrl.arc_signal("FETCH", "COMP_A"),
        load_value=work * 3, width=16,
    ))
    m.counter(down_counter(
        "c_b", load_cond=ctrl.arc_signal("FETCH", "COMP_B"),
        load_value=work * 7, width=16,
    ))
    m.counter(up_counter(
        "items_done",
        reset_cond=ctrl.arc_signal("IDLE", "FETCH"),
        enable=ctrl.entry_signal("EMIT"),
        width=16,
    ))

    if with_datapath:
        m.datapath(DatapathBlock(
            "alu_a", cells={"MUL": 4, "ADD": 8}, width=16,
            inputs=("cur",), active_states=(("ctrl", "COMP_A"),),
        ))
        m.datapath(DatapathBlock(
            "alu_b", cells={"MUL": 12, "ADD": 16}, width=16,
            inputs=("cur",), active_states=(("ctrl", "COMP_B"),),
        ))

    m.set_done(Sig("ctrl__state") == ctrl.code_of("DONE"))
    return m.finalize()


def toy_expected_cycles(items) -> int:
    """Closed-form cycle count of the toy for an item list."""
    total = 1  # IDLE -> FETCH
    for word in items:
        work = word & 0xFF
        mode = (word >> 8) & 1
        total += 3 + (7 if mode else 3) * work
    return total


def pack_item(work: int, mode: int) -> int:
    return (mode & 1) << 8 | (work & 0xFF)


@pytest.fixture
def toy_module() -> Module:
    return build_toy()


class ToyDesign:
    """AcceleratorDesign-compatible wrapper for the toy (flow tests)."""

    from repro.units import MHZ as _MHZ

    name = "toy"
    description = "toy accelerator"
    task_description = "process one item list"
    nominal_frequency = 100 * 1e6
    deadline = 16.7e-3

    def __init__(self):
        self._module = None

    def build(self):
        if self._module is None:
            self._module = build_toy()
        return self._module

    def encode_job(self, items):
        from repro.accelerators.base import JobInput
        return JobInput(
            inputs={"n_items": len(items)},
            memories={"items": list(items)},
            coarse_param=len(items) // 4,
        )


def toy_workload(n_jobs: int, seed: int):
    """Random item lists for the toy design."""
    import numpy as np
    rng = np.random.default_rng(seed)
    jobs = []
    for _ in range(n_jobs):
        n = int(rng.integers(2, 14))
        jobs.append([
            pack_item(int(rng.integers(0, 200)), int(rng.integers(0, 2)))
            for _ in range(n)
        ])
    return jobs


# ---------------------------------------------------------------------
# Shared runtime/DVFS doubles and expensive session-scoped builds.
# Suites that previously grew private copies (tests/check, tests/flow,
# tests/parallel, tests/integration) import or request these instead.

class FlatEnergyModel:
    """Deterministic test double: E = cycles * V^2 + 1e-3 W leakage."""

    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        vr = point.voltage
        return activity.cycles * 1e-9 * vr * vr + 1e-3 * duration


def job(index: int, cycles: int):
    """A bare JobRecord whose activity matches its cycle count."""
    from repro.dvfs import JobActivity
    from repro.runtime import JobRecord
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles))


def _default_task():
    from repro.runtime import Task
    from repro.units import MS
    return Task("t", deadline=10 * MS)


TASK = _default_task()


@pytest.fixture(scope="session")
def asic_levels():
    """One 100 MHz ASIC level table, characterized once per session."""
    from repro.dvfs import ASIC_VOLTAGES, AsicVfModel, build_level_table
    from repro.units import MHZ
    return build_level_table(AsicVfModel.characterize(100 * MHZ),
                             ASIC_VOLTAGES)


@pytest.fixture(scope="session")
def toy_package():
    """(design, predictor package) for the toy, built once per session.

    The offline flow costs ~0.3 s; every suite needing a generated
    predictor (flow, serve) shares this single build.
    """
    from repro.flow import FlowConfig, generate_predictor
    design = ToyDesign()
    return design, generate_predictor(
        design, toy_workload(60, seed=1), FlowConfig(gamma=1e-4))


@pytest.fixture(scope="session")
def shared_bundle():
    """Session-scoped benchmark-bundle factory.

    Builds one bundle per (name, scale, flow-config) for the whole
    session and keeps its own map, so the parallel suite's
    ``clear_bundle_cache()`` isolation cannot evict it.  Each call
    also re-seeds the runner's in-memory cache, so library code that
    calls ``bundle_for`` internally still hits.
    """
    from repro.experiments import runner
    from repro.flow import FlowConfig
    from repro.parallel import flow_config_fingerprint

    bundles = {}

    def factory(name, scale, flow_config=FlowConfig()):
        key = (name, scale, flow_config_fingerprint(flow_config))
        if key not in bundles:
            bundles[key] = runner.bundle_for(name, scale, flow_config)
        runner._BUNDLES[key] = bundles[key]
        return bundles[key]

    return factory
