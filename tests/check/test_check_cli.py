"""``repro check`` CLI tests: artifact audits and fresh-run goldens."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.dvfs import HistoryController
from repro.rtl import BACKENDS
from repro.obs import session
from repro.runtime import run_episode
from repro.units import DVFS_SWITCH_TIME, MS

from .conftest import TASK, job

#: The goldens committed with the repository (diffed in CI).
GOLDEN_DIR = Path(__file__).resolve().parents[1] / "golden"


def _captured_run(tmp_path, levels, model):
    """Record one instrumented episode into a run directory."""
    run_dir = tmp_path / "run"
    light = int(levels.nominal.frequency * 2 * MS)
    heavy = int(levels.nominal.frequency * 8 * MS)
    jobs = [job(i, heavy if i % 4 == 3 else light) for i in range(8)]
    with session(run_dir=run_dir, command="test check"):
        run_episode(HistoryController(levels, DVFS_SWITCH_TIME), jobs,
                    TASK, model)
    return run_dir


def _corrupt_first_job_event(run_dir, **changes):
    events_path = run_dir / "events.jsonl"
    lines = events_path.read_text().splitlines()
    for i, line in enumerate(lines):
        event = json.loads(line)
        if event.get("type") == "job":
            event.update(changes)
            lines[i] = json.dumps(event)
            break
    events_path.write_text("\n".join(lines) + "\n")


def test_artifact_audit_clean_run(tmp_path, capsys, levels, model):
    run_dir = _captured_run(tmp_path, levels, model)
    assert main(["check", str(run_dir)]) == 0
    assert "clean" in capsys.readouterr().out


def test_artifact_audit_flags_tampered_energy(tmp_path, capsys, levels,
                                              model):
    run_dir = _captured_run(tmp_path, levels, model)
    events = [json.loads(line) for line in
              (run_dir / "events.jsonl").read_text().splitlines()]
    first_job = next(e for e in events if e["type"] == "job")
    _corrupt_first_job_event(run_dir, energy=first_job["energy"] * 2)
    assert main(["check", str(run_dir)]) == 1
    out = capsys.readouterr().out
    assert "VIOLATION" in out and "energy" in out


def test_artifact_audit_flags_slack_miss_contradiction(tmp_path, capsys,
                                                       levels, model):
    run_dir = _captured_run(tmp_path, levels, model)
    # An on-time job (positive slack) suddenly claims it missed: both
    # the per-job check and the episode-summary miss count must fire.
    _corrupt_first_job_event(run_dir, missed=True)
    assert main(["check", str(run_dir)]) == 1
    assert "missed" in capsys.readouterr().out


def test_artifact_audit_missing_dir_exits_2(tmp_path, capsys):
    assert main(["check", str(tmp_path / "nope")]) == 2
    assert "manifest" in capsys.readouterr().err


def test_artifact_audit_torn_manifest(tmp_path, capsys):
    run_dir = tmp_path / "torn"
    run_dir.mkdir()
    (run_dir / "manifest.json").write_text("{\"command\": ")
    assert main(["check", str(run_dir)]) == 1
    assert "does not parse" in capsys.readouterr().out


def test_fresh_check_rejects_unknown_names(capsys):
    assert main(["check", "--benchmarks", "npu"]) == 2
    assert "unknown benchmark" in capsys.readouterr().err
    assert main(["check", "--benchmarks", "aes",
                 "--schemes", "psychic"]) == 2
    assert "unknown scheme" in capsys.readouterr().err


def test_fresh_check_golden_update_then_match_then_drift(tmp_path,
                                                         capsys):
    base = ["check", "--benchmarks", "aes", "--scale", "0.05",
            "--schemes", "baseline", "history", "oracle",
            "--golden-dir", str(tmp_path)]
    assert main(base + ["--update-golden"]) == 0
    golden = tmp_path / "aes_asic.json"
    assert golden.is_file()
    capsys.readouterr()

    assert main(base) == 0
    assert "golden match" in capsys.readouterr().out

    payload = json.loads(golden.read_text())
    payload["episodes"]["baseline"]["total_energy"] *= 1.01
    golden.write_text(json.dumps(payload))
    assert main(base) == 1
    assert "DRIFT" in capsys.readouterr().out


def test_fresh_check_missing_golden_is_a_failure(tmp_path, capsys):
    assert main(["check", "--benchmarks", "aes", "--scale", "0.05",
                 "--schemes", "baseline",
                 "--golden-dir", str(tmp_path / "empty")]) == 1
    assert "no golden" in capsys.readouterr().out


def test_committed_goldens_match_a_fresh_run(capsys):
    """The acceptance gate in miniature: every scheme of one real
    benchmark re-runs violation-free, matches the committed golden,
    and the checker still catches all seeded bugs."""
    assert main(["check", "--benchmarks", "aes", "--scale", "0.05",
                 "--golden-dir", str(GOLDEN_DIR), "--smoke"]) == 0
    out = capsys.readouterr().out
    assert "0 violation(s)" in out
    assert "golden match" in out
    assert "smoke ok" in out


@pytest.mark.parametrize("backend", BACKENDS)
def test_committed_goldens_match_under_every_backend(backend, capsys):
    """Backend-equivalence gate: the committed goldens predate the
    stepjit and batch backends, so a golden match under each
    ``--backend`` proves episodes, energy and misses are
    backend-invariant end to end."""
    from repro.rtl import set_default_backend

    try:
        assert main(["check", "--benchmarks", "aes", "--scale", "0.05",
                     "--backend", backend,
                     "--golden-dir", str(GOLDEN_DIR)]) == 0
    finally:
        set_default_backend(None)  # --backend installs a global default
    assert "golden match" in capsys.readouterr().out
