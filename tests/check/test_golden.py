"""Golden-trace harness tests: canonicalization, diffing, storage."""

import json
import math
from pathlib import Path

from repro.check import (
    GOLDEN_SCHEMA_VERSION,
    canonical_episode,
    diff_against_golden,
    diff_canonical,
    golden_path,
    load_golden,
    make_golden_payload,
    round_sig,
    save_golden,
)


def test_round_sig_keeps_significant_digits():
    assert round_sig(123456.789, 3) == 123000.0
    assert round_sig(0.00123456789, 3) == 0.00123
    assert round_sig(-9.87654321e-7, 4) == -9.877e-7
    assert round_sig(0.0) == 0.0
    assert round_sig(float("inf")) == float("inf")
    assert math.isnan(round_sig(float("nan")))


def test_canonical_episode_is_json_stable(clean_episode):
    payload = canonical_episode(clean_episode)
    assert payload["controller"] == "history"
    assert payload["n_jobs"] == clean_episode.n_jobs
    assert payload["switch_count"] >= 1
    assert len(payload["jobs"]) == clean_episode.n_jobs
    # Canonicalization survives a JSON round-trip unchanged — the whole
    # point of rounding to a fixed number of significant digits.
    assert json.loads(json.dumps(payload)) == payload
    assert diff_canonical(payload, json.loads(json.dumps(payload))) == []


def test_diff_canonical_number_tolerances():
    # "energy" fields get the loose 1e-6 tolerance ...
    assert diff_canonical({"energy": 1.0}, {"energy": 1.0 + 5e-7}) == []
    assert diff_canonical({"energy": 1.0}, {"energy": 1.0 + 5e-6})
    # ... while unlisted numeric fields compare at the tight default.
    assert diff_canonical({"t_exec": 1.0}, {"t_exec": 1.0 + 1e-10}) == []
    assert diff_canonical({"t_exec": 1.0}, {"t_exec": 1.0 + 1e-8})


def test_diff_canonical_tolerance_keyed_on_innermost_field():
    current = {"jobs": [{"index": 0, "energy": 2.0}]}
    golden = {"jobs": [{"index": 0, "energy": 2.0 * (1 + 5e-7)}]}
    assert diff_canonical(current, golden) == []


def test_diff_canonical_structure_mismatches():
    assert any("absent in golden" in line for line in
               diff_canonical({"a": 1, "b": 2}, {"a": 1}))
    assert any("absent now" in line for line in
               diff_canonical({"a": 1}, {"a": 1, "b": 2}))
    assert any("length" in line for line in
               diff_canonical({"jobs": [1, 2]}, {"jobs": [1]}))
    # Flags compare exactly, never through a float tolerance.
    assert diff_canonical({"missed": True}, {"missed": False})
    assert diff_canonical({"controller": "pid"}, {"controller": "oracle"})


def test_golden_path_layout():
    assert golden_path("/g", "aes", "asic") == Path("/g/aes_asic.json")


def test_save_load_diff_roundtrip(tmp_path, clean_episode):
    payload = make_golden_payload(
        "synthetic", "asic", 0.05,
        {"history": canonical_episode(clean_episode)})
    assert payload["schema"] == GOLDEN_SCHEMA_VERSION
    path = golden_path(tmp_path, "synthetic", "asic")
    save_golden(path, payload)
    assert load_golden(path) == payload
    assert diff_against_golden(payload, path) == []


def test_diff_against_missing_golden_returns_none(tmp_path):
    payload = make_golden_payload("synthetic", "asic", 0.05, {})
    assert diff_against_golden(
        payload, golden_path(tmp_path, "synthetic", "asic")) is None


def test_header_mismatch_short_circuits(tmp_path, clean_episode):
    payload = make_golden_payload(
        "synthetic", "asic", 0.05,
        {"history": canonical_episode(clean_episode)})
    path = golden_path(tmp_path, "synthetic", "asic")
    save_golden(path, payload)
    rescaled = dict(payload, scale=0.1)
    drifts = diff_against_golden(rescaled, path)
    # One explanatory line, not per-field noise from every episode.
    assert len(drifts) == 1 and "scale" in drifts[0]
    reversioned = dict(payload, schema=GOLDEN_SCHEMA_VERSION + 1)
    drifts = diff_against_golden(reversioned, path)
    assert len(drifts) == 1 and "schema" in drifts[0]


def test_real_drift_is_reported_per_field(tmp_path, clean_episode):
    canonical = canonical_episode(clean_episode)
    payload = make_golden_payload("synthetic", "asic", 0.05,
                                  {"history": canonical})
    path = golden_path(tmp_path, "synthetic", "asic")
    save_golden(path, payload)
    moved = json.loads(json.dumps(payload))
    moved["episodes"]["history"]["total_energy"] *= 1.01
    drifts = diff_against_golden(moved, path)
    assert len(drifts) == 1
    assert "total_energy" in drifts[0]
