"""Artifact audits of serve runs: sjob conservation, time series, SLO."""

import json

from repro.check import check_run_dir
from repro.obs import session


def _serve_run(tmp_path):
    """A synthetic-but-consistent serve run directory: 3 offered jobs
    (1 completed, 1 fallback+miss, 1 shed), windowed series and
    counters that all agree."""
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="serve synth") as obs:
        obs.metrics.inc("serve.offered", 3)
        obs.metrics.inc("serve.completed", 1)
        obs.metrics.inc("serve.fallback", 1)
        obs.metrics.inc("serve.shed", 1)
        ts = obs.timeseries
        for t, shed in ((0.00, 0.0), (0.01, 0.0), (0.15, 1.0)):
            ts.observe("serve.shed", t, shed)
        ts.observe("serve.miss", 0.005, 0.0)
        ts.observe("serve.miss", 0.06, 1.0)
        obs.emit("sjob", stream="s", index=0, status="completed",
                 arrival=0.0, release=0.0, start=0.0, t_slice=0.001,
                 t_switch=0.0, t_exec=0.004, energy=1e-5, missed=False)
        obs.emit("sjob", stream="s", index=1, status="fallback",
                 arrival=0.01, release=0.01, start=0.01, t_slice=0.0,
                 t_switch=0.0, t_exec=0.05, energy=2e-5, missed=True)
        obs.emit("sjob", stream="s", index=2, status="shed",
                 arrival=0.02)
        obs.emit("stream", stream="s", scheme="prediction", n_offered=3,
                 n_completed=1, n_fallback=1, n_shed=1, misses=1,
                 energy=3e-5, makespan=0.06, wall_s=0.01)
    return run_dir


def _rewrite_events(run_dir, mutate):
    path = run_dir / "events.jsonl"
    events = [json.loads(line)
              for line in path.read_text().splitlines()]
    mutate(events)
    path.write_text("".join(json.dumps(e) + "\n" for e in events))


def _rewrite_manifest(run_dir, mutate):
    path = run_dir / "manifest.json"
    manifest = json.loads(path.read_text())
    mutate(manifest)
    path.write_text(json.dumps(manifest))


def test_consistent_serve_run_is_clean(tmp_path):
    assert check_run_dir(_serve_run(tmp_path)) == []


def test_stream_summary_count_mismatch(tmp_path):
    run_dir = _serve_run(tmp_path)

    def mutate(events):
        next(e for e in events if e["type"] == "stream")["n_shed"] = 0

    _rewrite_events(run_dir, mutate)
    violations = check_run_dir(run_dir)
    assert any("n_shed=0 but sjob events show 1" in v
               for v in violations)


def test_stream_summary_energy_mismatch(tmp_path):
    run_dir = _serve_run(tmp_path)

    def mutate(events):
        next(e for e in events if e["type"] == "stream")["energy"] = 9.0

    _rewrite_events(run_dir, mutate)
    assert any("energy" in v and "sjob-event sum" in v
               for v in check_run_dir(run_dir))


def test_negative_sjob_time_is_flagged(tmp_path):
    run_dir = _serve_run(tmp_path)

    def mutate(events):
        next(e for e in events if e["type"] == "sjob")["t_exec"] = -1.0

    _rewrite_events(run_dir, mutate)
    assert any("negative t_exec" in v for v in check_run_dir(run_dir))


def test_orphaned_sjobs_are_flagged(tmp_path):
    run_dir = _serve_run(tmp_path)

    def mutate(events):
        # Summaries for a stream nobody recorded jobs for: the real
        # stream's sjobs become orphans and the impostor mismatches.
        next(e for e in events if e["type"] == "stream")["stream"] = "x"

    _rewrite_events(run_dir, mutate)
    violations = check_run_dir(run_dir)
    assert any("never closed by a stream summary" in v
               for v in violations)


def test_missing_timeseries_artifact(tmp_path):
    run_dir = _serve_run(tmp_path)
    (run_dir / "timeseries.json").unlink()
    assert any("timeseries.json but the file is missing" in v
               for v in check_run_dir(run_dir))


def test_corrupt_timeseries_artifact(tmp_path):
    run_dir = _serve_run(tmp_path)
    (run_dir / "timeseries.json").write_text("{not json")
    assert any("does not parse" in v for v in check_run_dir(run_dir))


def test_timeseries_count_conservation(tmp_path):
    run_dir = _serve_run(tmp_path)
    path = run_dir / "timeseries.json"
    payload = json.loads(path.read_text())
    # Drop one shed-indicator window: 3 offered jobs now map to fewer
    # windowed samples than the counters imply.
    del payload["series"]["serve.shed"]["1"]
    path.write_text(json.dumps(payload))
    assert any("serve.shed holds 2 samples" in v
               and "imply 3" in v for v in check_run_dir(run_dir))


def test_evicted_windows_waive_conservation(tmp_path):
    run_dir = _serve_run(tmp_path)
    path = run_dir / "timeseries.json"
    payload = json.loads(path.read_text())
    del payload["series"]["serve.shed"]["1"]
    payload["dropped_windows"] = {"serve.shed": 1}  # declared eviction
    path.write_text(json.dumps(payload))
    assert check_run_dir(run_dir) == []


def test_inconsistent_slo_rows(tmp_path):
    run_dir = _serve_run(tmp_path)

    def mutate(manifest):
        manifest["slo"] = [
            {"spec": "miss_rate<0.05@99%", "windows": 2,
             "bad_windows": 5, "burn_rate": 0.5, "exhausted": True},
        ]

    _rewrite_manifest(run_dir, mutate)
    violations = check_run_dir(run_dir)
    assert any("outside" in v for v in violations)
    assert any("contradicts burn_rate" in v for v in violations)
