"""Mutation-smoke tests: every seeded bug must trip the checker."""

import pytest

from repro.check import (
    MUTATIONS,
    apply_mutation,
    check_episode,
    run_mutation_smoke,
    seed_spurious_miss,
    seed_timeline_gap,
    seed_uncharged_switch_energy,
)
from repro.dvfs import ConstantFrequencyController
from repro.runtime import EpisodeResult, run_episode

from .conftest import TASK, job

#: The violation each seeded bug class must at minimum produce.
EXPECTED_CODE = {
    "spurious_miss": "deadline.miss_flag",
    "uncharged_switch_energy": "energy.recompute",
    "timeline_gap": "timeline.start",
}


def test_registry_and_expectations_agree():
    assert set(MUTATIONS) == set(EXPECTED_CODE)


def test_every_seeded_bug_is_caught(clean_episode, levels, model):
    report = run_mutation_smoke(clean_episode, model, levels=levels)
    assert set(report) == set(MUTATIONS)
    for name, violations in report.items():
        assert violations, f"checker went blind to {name}"
        assert EXPECTED_CODE[name] in {v.code for v in violations}


def test_mutations_leave_the_original_untouched(clean_episode, levels,
                                                model):
    before = [(o.start, o.energy, o.missed, o.t_switch)
              for o in clean_episode.outcomes]
    run_mutation_smoke(clean_episode, model, levels=levels)
    after = [(o.start, o.energy, o.missed, o.t_switch)
             for o in clean_episode.outcomes]
    assert before == after
    assert check_episode(clean_episode, energy_model=model,
                         levels=levels) == []


def test_unknown_mutation_name_raises(clean_episode):
    with pytest.raises(KeyError, match="unknown mutation"):
        apply_mutation("transpose_voltages", clean_episode)


def test_switch_energy_mutation_requires_the_model(clean_episode):
    with pytest.raises(ValueError, match="energy model"):
        seed_uncharged_switch_energy(clean_episode, None)


def test_switch_energy_mutation_needs_a_switched_job(levels, model):
    # The baseline never leaves nominal, so nothing ever switches.
    jobs = [job(i, 100_000) for i in range(4)]
    flat = run_episode(ConstantFrequencyController(levels), jobs, TASK,
                       model)
    with pytest.raises(ValueError, match="no switched job"):
        seed_uncharged_switch_energy(flat, model)


def test_spurious_miss_mutation_needs_an_on_time_job(levels, model):
    too_big = int(levels.nominal.frequency * TASK.deadline * 1.5)
    all_missed = run_episode(ConstantFrequencyController(levels),
                             [job(0, too_big), job(1, too_big)], TASK,
                             model)
    assert all_missed.miss_count == 2
    with pytest.raises(ValueError, match="every job missed"):
        seed_spurious_miss(all_missed)


def test_timeline_gap_mutation_rejects_empty_episode():
    empty = EpisodeResult(controller="baseline", task=TASK, outcomes=[])
    with pytest.raises(ValueError, match="empty"):
        seed_timeline_gap(empty)
