"""Shared fixtures for the correctness-subsystem tests."""

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    HistoryController,
    JobActivity,
    build_level_table,
)
from repro.runtime import JobRecord, Task, run_episode
from repro.units import DVFS_SWITCH_TIME, MHZ, MS


class FlatEnergyModel:
    """Deterministic test double: E = cycles * V^2 + 1e-3 W leakage."""

    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        vr = point.voltage
        return activity.cycles * 1e-9 * vr * vr + 1e-3 * duration


def job(index, cycles):
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles))


TASK = Task("t", deadline=10 * MS)


@pytest.fixture(scope="package")
def levels():
    return build_level_table(AsicVfModel.characterize(100 * MHZ),
                             ASIC_VOLTAGES)


@pytest.fixture
def model():
    return FlatEnergyModel()


@pytest.fixture
def clean_episode(levels, model):
    """A history-controller run with level changes and on-time jobs.

    The spiky workload makes the moving-average controller change
    levels (so switch mutations apply) while most jobs stay on time
    (so miss mutations apply) — the preconditions of
    :func:`repro.check.run_mutation_smoke`.
    """
    light = int(levels.nominal.frequency * 2 * MS)
    heavy = int(levels.nominal.frequency * 8 * MS)
    jobs = [job(i, heavy if i % 4 == 3 else light) for i in range(12)]
    ctrl = HistoryController(levels, DVFS_SWITCH_TIME)
    return run_episode(ctrl, jobs, TASK, model)
