"""Shared fixtures for the correctness-subsystem tests.

The energy-model double, job factory and task now live in the
top-level ``tests/conftest.py``; this module re-exports them so the
suite keeps its ``from .conftest import TASK, job`` idiom.
"""

import pytest

from repro.dvfs import HistoryController
from repro.runtime import run_episode
from repro.units import DVFS_SWITCH_TIME, MS
from tests.conftest import TASK, FlatEnergyModel, job

__all__ = ["TASK", "FlatEnergyModel", "job"]


@pytest.fixture(scope="package")
def levels(asic_levels):
    return asic_levels


@pytest.fixture
def model():
    return FlatEnergyModel()


@pytest.fixture
def clean_episode(levels, model):
    """A history-controller run with level changes and on-time jobs.

    The spiky workload makes the moving-average controller change
    levels (so switch mutations apply) while most jobs stay on time
    (so miss mutations apply) — the preconditions of
    :func:`repro.check.run_mutation_smoke`.
    """
    light = int(levels.nominal.frequency * 2 * MS)
    heavy = int(levels.nominal.frequency * 8 * MS)
    jobs = [job(i, heavy if i % 4 == 3 else light) for i in range(12)]
    ctrl = HistoryController(levels, DVFS_SWITCH_TIME)
    return run_episode(ctrl, jobs, TASK, model)
