"""Invariant-checker tests: clean episodes pass, tampering is caught."""

from dataclasses import replace

import pytest

from repro.check import (
    SCHEME_CAPS,
    InvariantError,
    InvariantViolation,
    capabilities_for,
    check_episode,
)
from repro.dvfs import OracleController
from repro.obs import session
from repro.runtime import EpisodeResult, run_episode
from repro.units import DVFS_SWITCH_TIME, MS

from .conftest import TASK, job


def codes(violations):
    return {v.code for v in violations}


def tamper(result, index, **changes):
    """Copy ``result`` with one outcome's fields replaced."""
    outcomes = list(result.outcomes)
    outcomes[index] = replace(outcomes[index], **changes)
    return EpisodeResult(controller=result.controller, task=result.task,
                         outcomes=outcomes)


def first_switched(result):
    return next(i for i, o in enumerate(result.outcomes)
                if o.t_switch > 0.0)


def test_clean_episode_has_no_violations(clean_episode, levels, model):
    assert check_episode(clean_episode, energy_model=model,
                         levels=levels) == []


def test_clean_oracle_episode(levels, model):
    jobs = [job(i, int(levels.nominal.frequency * (2 + 3 * (i % 3)) * MS))
            for i in range(9)]
    result = run_episode(OracleController(levels), jobs, TASK, model)
    assert check_episode(result, energy_model=model, levels=levels) == []
    # The capability rule the checker enforces: oracle pays no switch.
    assert all(o.t_switch == 0.0 for o in result.outcomes)


def test_scheme_caps_cover_all_registered_schemes():
    from repro.experiments import ALL_SCHEMES
    assert set(SCHEME_CAPS) == set(ALL_SCHEMES)
    assert capabilities_for("oracle").charge_overheads is False
    assert capabilities_for("prediction").uses_slice is True
    # Ad-hoc test controllers are unknown: no capability checks.
    assert capabilities_for("fixed") is None


def test_flipped_miss_flag_is_caught(clean_episode, levels, model):
    i = next(i for i, o in enumerate(clean_episode.outcomes)
             if not o.missed)
    bad = tamper(clean_episode, i, missed=True)
    found = check_episode(bad, energy_model=model, levels=levels)
    assert "deadline.miss_flag" in codes(found)


def test_timeline_gap_is_caught(clean_episode, levels, model):
    o = clean_episode.outcomes[5]
    bad = tamper(clean_episode, 5, start=o.start + 1 * MS)
    assert "timeline.start" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_off_period_release_is_caught(clean_episode, levels, model):
    o = clean_episode.outcomes[3]
    bad = tamper(clean_episode, 3, release=o.release + 2 * MS)
    assert "timeline.release" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_exec_time_tamper_is_caught(clean_episode, levels, model):
    o = clean_episode.outcomes[2]
    bad = tamper(clean_episode, 2, t_exec=o.t_exec * 1.5)
    assert "time.exec" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_negative_time_is_caught(clean_episode, levels, model):
    bad = tamper(clean_episode, 1, t_exec=-1e-6)
    assert "time.negative" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_energy_tamper_is_caught(clean_episode, levels, model):
    o = clean_episode.outcomes[4]
    bad = tamper(clean_episode, 4, energy=o.energy * 1.001)
    assert "energy.recompute" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_energy_check_skipped_without_model(clean_episode, levels):
    o = clean_episode.outcomes[4]
    bad = tamper(clean_episode, 4, energy=o.energy * 1.001)
    # No energy model -> the checker cannot recompute, so it must not
    # guess; only the model-independent identities are enforced.
    assert check_episode(bad, levels=levels) == []


def test_wrong_switch_duration_is_caught(clean_episode, levels, model):
    i = first_switched(clean_episode)
    o = clean_episode.outcomes[i]
    bad = tamper(clean_episode, i, t_switch=o.t_switch / 2)
    assert "switch.charge" in codes(
        check_episode(bad, energy_model=model, levels=levels))


def test_oracle_charged_switch_is_caught(levels, model):
    jobs = [job(0, 100_000), job(1, int(levels.nominal.frequency * 8 * MS))]
    result = run_episode(OracleController(levels), jobs, TASK, model)
    bad = tamper(result, 1, t_switch=DVFS_SWITCH_TIME)
    assert "caps.switch_free" in codes(
        check_episode(bad, levels=levels))


def test_sliceless_scheme_charged_slice_is_caught(clean_episode, levels):
    bad = tamper(clean_episode, 0, t_slice=1 * MS)
    assert "caps.slice_free" in codes(
        check_episode(bad, levels=levels))


def test_violation_renders_code_job_and_values():
    text = str(InvariantViolation(code="time.exec", job_index=3,
                                  message="off", expected=1.0, actual=2.0))
    assert "time.exec" in text and "[job 3]" in text
    assert "expected=1.0" in text and "actual=2.0" in text
    episode_level = str(InvariantViolation(code="x", job_index=None,
                                           message="m"))
    assert "[episode]" in episode_level


def test_invariant_error_counts_and_truncates():
    violations = [InvariantViolation(code=f"c{i}", job_index=i,
                                     message="m") for i in range(25)]
    err = InvariantError(violations)
    assert "25 episode invariant violation(s)" in str(err)
    assert "… and 5 more" in str(err)
    assert len(err.violations) == 25


def test_checker_feeds_obs_counters(clean_episode, levels, model):
    with session() as obs:
        check_episode(clean_episode, energy_model=model, levels=levels)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["check.episodes"] == 1
        assert counters["check.jobs"] == clean_episode.n_jobs
        assert "check.violations" not in counters
        bad = tamper(clean_episode, 0, missed=not
                     clean_episode.outcomes[0].missed)
        check_episode(bad, energy_model=model, levels=levels)
        counters = obs.metrics.snapshot()["counters"]
        assert counters["check.violations"] >= 1
