"""Salvaged event parsing and the windowed serve report section."""

import pytest

from repro.obs import SloTracker, TimeSeriesRegistry, parse_slo, session
from repro.obs.report import (
    _salvage_events,
    render_run,
    summarize_serve_windows,
)


# -- _salvage_events ----------------------------------------------------

def test_salvage_torn_final_line(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('{"type": "job", "index": 0}\n'
                    '{"type": "job", "index": 1}\n'
                    '{"type": "job", "ind')  # crash mid-write
    events = _salvage_events(path)
    assert [e["index"] for e in events] == [0, 1]


def test_salvage_skips_blank_lines(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text('\n{"type": "job", "index": 0}\n\n   \n'
                    '{"type": "episode"}\n\n')
    events = _salvage_events(path)
    assert len(events) == 2
    assert events[1]["type"] == "episode"


def test_salvage_fully_corrupt_file_yields_nothing(tmp_path):
    path = tmp_path / "events.jsonl"
    path.write_text("not json at all\n<<binary garbage>>\n{broken\n")
    assert _salvage_events(path) == []


# -- the serve dashboard ------------------------------------------------

def _serve_fixture(tmp_path):
    """A deterministic serve run dir: 3 executed jobs over 2 windows
    of the default 100 ms, plus an exhausted-SLO summary."""
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="serve demo") as obs:
        ts = obs.timeseries
        for t, miss, energy in ((0.01, 0.0, 1e-5), (0.05, 1.0, 3e-5),
                                (0.12, 1.0, 2e-5)):
            ts.observe("serve.miss", t, miss)
            ts.observe("serve.energy_per_job", t, energy)
            ts.observe("serve.decision_ms", t, 0.5)
            ts.observe("serve.fallback", t, 0.0)
        ts.observe("serve.shed", 0.01, 0.0)
        obs.slo = SloTracker([parse_slo("miss_rate<0.7")])
        obs.slo.finalize(ts)
    return run_dir


def test_render_run_serve_section_golden(tmp_path):
    text = render_run(_serve_fixture(tmp_path))
    assert "serve (windows of 100 ms, virtual clock):" in text
    assert "miss%" in text and "energy/job" in text
    rows = [line.strip() for line in text.splitlines()]
    # Window 0: jobs at 0.01/0.05 — 2 executed, 50% missed, 2e-05 mean.
    row0 = next(r for r in rows if r.startswith("0.00"))
    assert "2" in row0.split() and "50.0" in row0 and "2e-05" in row0
    # Window 1: the job at 0.12 — 100% missed.
    row1 = next(r for r in rows if r.startswith("0.10"))
    assert "100.0" in row1
    # The manifest SLO summary renders with its burn rate.
    assert "slo:" in text
    assert "slo miss_rate<0.7@99%: 1/2 bad window(s)" in text
    assert "burn rate 50.00 — EXHAUSTED" in text


def test_summarize_serve_windows_coarsens_long_runs():
    ts = TimeSeriesRegistry(window_s=0.1)
    for i in range(100):
        ts.observe("serve.miss", (i + 0.5) * 0.1, float(i % 2))
    out = summarize_serve_windows(ts, max_rows=10)
    assert "merged per row" in out
    data_rows = [line for line in out.splitlines()
                 if line.strip() and line.strip()[0].isdigit()]
    assert 0 < len(data_rows) <= 10
    assert "miss rate" in out  # sparkline keeps full resolution


def test_summarize_serve_windows_empty():
    assert "no windowed" in summarize_serve_windows(TimeSeriesRegistry())


def test_render_run_flags_evicted_windows(tmp_path):
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="serve long") as obs:
        obs.timeseries = TimeSeriesRegistry(window_s=0.1, capacity=2)
        for i in range(5):
            obs.timeseries.observe("serve.miss", i * 0.1, 0.0)
    text = render_run(run_dir)
    assert "ring evicted old windows — serve.miss: 3" in text
