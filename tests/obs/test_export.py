"""Chrome-trace export of captured run directories."""

import json

import pytest

from repro.obs import session
from repro.obs.export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)


def _serve_run(tmp_path):
    """A captured run with spans, sjob/job events and a time series."""
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="serve test") as obs:
        with obs.span("serve", streams=1):
            pass
        obs.emit("sjob", stream="aes", index=0, status="completed",
                 arrival=0.0, release=0.0, start=0.0, t_slice=0.001,
                 t_switch=0.0, t_exec=0.004, energy=1e-5, missed=False,
                 decision_ms=0.01, batch_size=1)
        obs.emit("sjob", stream="aes", index=1, status="shed",
                 arrival=0.002)
        obs.emit("job", controller="pid", task="cam", index=0,
                 t_slice=0.0, t_exec=0.002, missed=False, energy=2e-5)
        obs.timeseries.observe("serve.miss", 0.004, 0.0)
        obs.timeseries.observe("serve.energy_per_job", 0.004, 1e-5)
    return run_dir


def test_chrome_trace_structure(tmp_path):
    payload = chrome_trace(_serve_run(tmp_path))
    assert validate_chrome_trace(payload) == []
    events = payload["traceEvents"]
    # Two clock domains on two trace processes.
    assert {e["pid"] for e in events} == {1, 2}
    slices = [e for e in events if e["ph"] == "X"]
    assert any(e["name"] == "serve" and e["pid"] == 1 for e in slices)
    # The shed job never executed: an instant at its arrival.
    shed = next(e for e in events if e["ph"] == "i")
    assert shed["ts"] == pytest.approx(0.002 * 1e6)
    assert shed["args"]["status"] == "shed"
    # Time-series windows become counter tracks.
    counter_names = {e["name"] for e in events if e["ph"] == "C"}
    assert {"miss_rate", "energy_per_job"} <= counter_names


def test_sjob_placement_is_exact_virtual_time(tmp_path):
    payload = chrome_trace(_serve_run(tmp_path))
    sjob = next(e for e in payload["traceEvents"]
                if e["ph"] == "X" and e["pid"] == 2
                and "status" in e.get("args", {}))
    assert sjob["ts"] == pytest.approx(0.0)
    assert sjob["dur"] == pytest.approx(0.005 * 1e6)  # slice+switch+exec


def test_episode_jobs_laid_end_to_end(tmp_path):
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="episode") as obs:
        for i, t_exec in enumerate((0.002, 0.003)):
            obs.emit("job", controller="pid", task="cam", index=i,
                     t_slice=0.001, t_exec=t_exec, missed=False)
    payload = chrome_trace(run_dir)
    track = sorted((e for e in payload["traceEvents"]
                    if e["ph"] == "X" and e["pid"] == 2),
                   key=lambda e: e["ts"])
    assert track[0]["ts"] == pytest.approx(0.0)
    assert track[1]["ts"] == pytest.approx(track[0]["dur"])


def test_write_and_reload(tmp_path):
    run_dir = _serve_run(tmp_path)
    out = write_chrome_trace(run_dir, tmp_path / "trace.json")
    payload = json.loads(out.read_text())  # strict JSON on disk
    assert validate_chrome_trace(payload) == []
    assert payload["otherData"]["command"] == "serve test"
    assert payload["displayTimeUnit"] == "ms"


def test_validate_flags_problems():
    assert validate_chrome_trace({}) == \
        ["traceEvents is missing or not a list"]
    problems = validate_chrome_trace({"traceEvents": [
        {"ph": "X", "name": "a", "pid": 1, "ts": 0, "dur": -1},
        {"name": "b"},
        "nope",
    ]})
    assert any("negative duration" in p for p in problems)
    assert any("lacks 'ph'" in p for p in problems)
    assert any("not an object" in p for p in problems)


def test_missing_manifest_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        chrome_trace(tmp_path)
