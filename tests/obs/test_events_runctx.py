"""JSONL round-trip, sessions/manifests, and instrumented runs."""

import json

import pytest

from repro.dvfs import (
    ASIC_VOLTAGES,
    AsicVfModel,
    ConstantFrequencyController,
    JobActivity,
    build_level_table,
)
from repro.obs import (
    EVENTS_NAME,
    EventSink,
    MANIFEST_NAME,
    get_observer,
    read_events,
    session,
)
from repro.obs.report import format_stage_table, render_run
from repro.runtime import JobRecord, Task, run_episode
from repro.units import MHZ, MS


class FlatEnergyModel:
    """Trivial energy model for episode fixtures."""

    v_nominal = 1.0

    def job_energy(self, activity, point, duration):
        """Energy proportional to cycles and V^2."""
        return activity.cycles * 1e-9 * point.voltage ** 2


@pytest.fixture(scope="module")
def levels():
    return build_level_table(AsicVfModel.characterize(200 * MHZ),
                             ASIC_VOLTAGES)


def _job(index, cycles, predicted=None):
    return JobRecord(index=index, actual_cycles=cycles,
                     activity=JobActivity(cycles=cycles),
                     predicted_cycles=predicted)


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "events.jsonl"
    events = [
        {"type": "job", "index": 0, "missed": False, "slack": 1.5},
        {"type": "job", "index": 1, "missed": True, "slack": -0.25,
         "note": "unicode ✓"},
        {"type": "episode", "n_jobs": 2},
    ]
    with EventSink(path) as sink:
        for event in events:
            sink.emit(event)
        # Emitting after close is a silent no-op, not a crash.
    sink.emit({"type": "late"})
    loaded = read_events(path)
    assert len(loaded) == 3
    for original, parsed in zip(events, loaded):
        for key, value in original.items():
            assert parsed[key] == value
        assert "ts" in parsed


def test_session_writes_manifest_and_events(tmp_path):
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="unit test",
                 config={"scale": 0.05}) as obs:
        assert get_observer() is obs
        with obs.span("stage_a", design="aes"):
            obs.metrics.inc("things")
        obs.emit("custom", value=7)
    assert get_observer() is None  # uninstalled on exit

    manifest = json.loads((run_dir / MANIFEST_NAME).read_text())
    assert manifest["command"] == "unit test"
    assert manifest["config"] == {"scale": 0.05}
    assert manifest["n_events"] == 1
    assert manifest["duration_s"] >= 0.0
    assert [s["name"] for s in manifest["stages"]] == ["stage_a"]
    assert manifest["stages"][0]["labels"] == {"design": "aes"}
    assert manifest["metrics"]["counters"]["things"] == 1.0
    events = read_events(run_dir / EVENTS_NAME)
    assert events[0]["type"] == "custom" and events[0]["value"] == 7


def test_session_without_run_dir_collects_but_writes_nothing(tmp_path):
    with session(command="ephemeral") as obs:
        with obs.span("x"):
            pass
        obs.emit("dropped", a=1)  # no sink: silently discarded
    assert obs.finish() is None
    assert list(tmp_path.iterdir()) == []
    assert [s.name for s in obs.tracer.spans] == ["x"]


def test_run_episode_emits_per_job_events(tmp_path, levels):
    frequency = levels.nominal.frequency
    over = int(frequency * 12 * MS)   # overruns a 10 ms deadline
    small = int(frequency * 1 * MS)
    task = Task("cam", deadline=10 * MS)
    run_dir = tmp_path / "ep"
    with session(run_dir=run_dir, command="episode") as obs:
        run_episode(ConstantFrequencyController(levels),
                    [_job(0, over, predicted=float(over)),
                     _job(1, small)],
                    task, FlatEnergyModel())
    events = read_events(run_dir / EVENTS_NAME)
    jobs = [e for e in events if e["type"] == "job"]
    episodes = [e for e in events if e["type"] == "episode"]
    assert len(jobs) == 2 and len(episodes) == 1
    first, second = jobs
    assert first["missed"] is True and first["slack"] < 0
    assert first["predicted_cycles"] == float(over)
    assert first["actual_cycles"] == over
    assert first["voltage"] == levels.nominal.voltage
    assert second["missed"] is False
    assert episodes[0]["n_jobs"] == 2 and episodes[0]["misses"] == 1
    assert obs.metrics.counters["episode.jobs"] == 2.0
    assert obs.metrics.counters["episode.misses"] == 1.0
    assert obs.metrics.histograms["episode.slack_ms"].count == 2


def test_render_run_full_report(tmp_path, levels):
    frequency = levels.nominal.frequency
    task = Task("cam", deadline=10 * MS)
    jobs = [_job(i, int(frequency * 2 * MS)) for i in range(4)]
    run_dir = tmp_path / "run"
    with session(run_dir=run_dir, command="experiment figX",
                 config={"scale": 0.05}) as obs:
        with obs.span("bundle", benchmark="aes"):
            with obs.span("fit", benchmark="aes"):
                pass
        run_episode(ConstantFrequencyController(levels), jobs, task,
                    FlatEnergyModel())
    text = render_run(run_dir)
    assert "experiment figX" in text
    assert "scale=0.05" in text
    assert "bundle" in text and "fit" in text
    assert "baseline on cam: 4 jobs, 0 missed" in text
    assert "slack" in text  # the sparkline line


def test_format_stage_table_empty():
    assert "no spans" in format_stage_table([])
