"""The offline flow emits spans, metrics, and a flow event."""

from repro.accelerators import get_design
from repro.flow import generate_predictor
from repro.obs import read_events, session
from repro.workloads import workload_for


def test_generate_predictor_records_stages(tmp_path):
    design = get_design("sha")
    workload = workload_for("sha", scale=0.1)
    run_dir = tmp_path / "flow"
    with session(run_dir=run_dir, command="flow test") as obs:
        package = generate_predictor(design, workload.train)

    names = [s.name for s in obs.tracer.spans]
    for stage in ("synthesize", "detect", "record", "fit", "slice",
                  "flow"):
        assert stage in names
    flow_span = next(s for s in obs.tracer.spans if s.name == "flow")
    fit_span = next(s for s in obs.tracer.spans if s.name == "fit")
    assert flow_span.depth == 0 and fit_span.parent == "flow"
    assert flow_span.labels == {"design": "sha"}

    counters = obs.metrics.counters
    assert counters["flow.designs"] == 1.0
    assert counters["flow.features.candidate"] == float(
        package.n_candidate_features)
    assert counters["flow.features.selected"] == float(
        package.n_selected_features)
    assert obs.metrics.gauges["flow.gamma.sha"] == package.gamma

    flow_events = [e for e in read_events(run_dir / "events.jsonl")
                   if e["type"] == "flow"]
    assert len(flow_events) == 1
    assert flow_events[0]["design"] == "sha"
    assert flow_events[0]["n_selected_features"] == \
        package.n_selected_features


def test_generate_predictor_unobserved_has_no_side_channel():
    """Without a session the flow neither records nor crashes."""
    from repro.obs import get_observer

    design = get_design("sha")
    workload = workload_for("sha", scale=0.1)
    assert get_observer() is None
    package = generate_predictor(design, workload.train)
    assert package.n_selected_features >= 1
