"""Windowed time-series registry: cells, rings, round-trips, merges."""

import json

import pytest

from repro.obs import TimeSeriesRegistry, WindowCell


def test_window_math():
    ts = TimeSeriesRegistry(window_s=0.5)
    assert ts.window_index(0.0) == 0
    assert ts.window_index(0.49) == 0
    assert ts.window_index(0.5) == 1
    assert ts.window_index(-3.0) == 0  # clamped, never negative
    assert ts.window_start(3) == pytest.approx(1.5)


def test_indicator_mean_is_rate():
    ts = TimeSeriesRegistry(window_s=1.0)
    for t, miss in ((0.1, 1), (0.2, 0), (0.3, 0), (0.4, 1), (1.2, 1)):
        ts.observe("miss", t, float(miss))
    windows = dict(ts.windows("miss"))
    assert windows[0].count == 4
    assert windows[0].mean == pytest.approx(0.5)
    assert windows[1].mean == pytest.approx(1.0)
    assert ts.total_count("miss") == 5
    assert ts.series_names() == ["miss"]
    assert ts.window_indices() == [0, 1]


def test_inc_skips_sketch_observe_keeps_it():
    ts = TimeSeriesRegistry()
    ts.inc("events", 0.0)
    ts.observe("latency", 0.0, 3.0)
    assert ts.cell("events", 0).sketch is None
    assert ts.cell("latency", 0).sketch is not None
    assert ts.cell("latency", 0).quantile(0.5) == pytest.approx(
        3.0, rel=0.05)
    assert ts.cell("latency", 99) is None


def test_sketchless_cell_quantile_fallback():
    cell = WindowCell()
    assert cell.quantile(0.5) == 0.0  # empty
    cell.add(1.0, None)
    cell.add(3.0, None)
    assert cell.quantile(0.0) == 1.0   # min
    assert cell.quantile(1.0) == 3.0   # max
    assert cell.quantile(0.5) == 2.0   # mean stands in between


def test_ring_eviction_counts_drops():
    ts = TimeSeriesRegistry(window_s=1.0, capacity=3)
    for i in range(5):
        ts.inc("x", float(i))
    assert [i for i, _ in ts.windows("x")] == [2, 3, 4]
    assert ts.dropped_windows == {"x": 2}


def test_round_trip_is_lossless_and_strict_json():
    ts = TimeSeriesRegistry(window_s=0.25, capacity=10,
                            sketch_accuracy=0.02)
    for i in range(30):
        ts.observe("lat", i * 0.1, float(i % 7))
        ts.inc("n", i * 0.1)
    payload = json.loads(json.dumps(ts.to_dict()))  # strict JSON
    back = TimeSeriesRegistry.from_dict(payload)
    assert back.window_s == ts.window_s
    assert back.to_dict() == ts.to_dict()
    for index, cell in ts.windows("lat"):
        other = back.cell("lat", index)
        assert other.count == cell.count
        assert other.quantile(0.5) == cell.quantile(0.5)


def test_merge_window_by_window():
    a = TimeSeriesRegistry(window_s=1.0)
    b = TimeSeriesRegistry(window_s=1.0)
    a.observe("m", 0.5, 1.0)
    b.observe("m", 0.5, 0.0)
    b.observe("m", 1.5, 1.0)
    b.dropped_windows["m"] = 2
    a.merge(b)
    assert a.cell("m", 0).count == 2
    assert a.cell("m", 0).mean == pytest.approx(0.5)
    assert a.cell("m", 1).count == 1
    assert a.dropped_windows["m"] == 2
    assert b.cell("m", 0).count == 1  # the source is untouched


def test_merge_rejects_mismatched_windows():
    with pytest.raises(ValueError, match="different windows"):
        TimeSeriesRegistry(window_s=1.0).merge(
            TimeSeriesRegistry(window_s=0.5))


def test_validation_and_bool():
    with pytest.raises(ValueError):
        TimeSeriesRegistry(window_s=0.0)
    with pytest.raises(ValueError):
        TimeSeriesRegistry(capacity=0)
    ts = TimeSeriesRegistry()
    assert not ts
    ts.inc("x", 0.0)
    assert ts
