"""Streaming histogram accuracy and registry behaviour."""

import json
import math

import numpy as np
import pytest

from repro.obs import MetricsRegistry, StreamingHistogram


@pytest.mark.parametrize("dist", ["lognormal", "uniform", "normal"])
def test_quantiles_match_numpy(dist):
    rng = np.random.default_rng(42)
    if dist == "lognormal":
        samples = rng.lognormal(mean=10.0, sigma=1.5, size=20_000)
    elif dist == "uniform":
        samples = rng.uniform(1e-3, 1e3, size=20_000)
    else:
        samples = rng.normal(0.0, 50.0, size=20_000)  # signed values

    hist = StreamingHistogram(relative_accuracy=0.005)
    for value in samples:
        hist.observe(float(value))

    for q in (0.50, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = hist.quantile(q)
        # DDSketch guarantee: relative error <= accuracy (plus the
        # rank-interpolation difference vs numpy on finite samples).
        scale = max(abs(exact), 1e-9)
        assert abs(estimate - exact) / scale < 0.02, (q, exact, estimate)


def test_histogram_exact_stats():
    hist = StreamingHistogram()
    for value in (1.0, 2.0, 3.0, -4.0, 0.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.mean == pytest.approx(0.4)
    assert hist.min == -4.0 and hist.max == 3.0
    assert hist.quantile(0.0) == pytest.approx(-4.0, rel=0.02)
    assert hist.quantile(1.0) == pytest.approx(3.0, rel=0.02)


def test_histogram_empty_and_validation():
    hist = StreamingHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.snapshot() == {"count": 0}
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        StreamingHistogram(relative_accuracy=0.0)


def test_histogram_memory_is_bounded():
    """The sketch stores buckets, not samples."""
    hist = StreamingHistogram(relative_accuracy=0.01)
    rng = np.random.default_rng(7)
    for value in rng.lognormal(5.0, 2.0, size=50_000):
        hist.observe(float(value))
    assert len(hist._positive) < 2_000  # vs 50k raw samples


def test_histogram_to_from_dict_round_trip_is_lossless():
    hist = StreamingHistogram(relative_accuracy=0.01)
    for value in (-5.0, 0.0, 1.0, 2.5, 1e6):
        hist.observe(value)
    payload = json.loads(json.dumps(hist.to_dict()))  # strict JSON
    back = StreamingHistogram.from_dict(payload)
    assert back.snapshot() == hist.snapshot()
    assert back.to_dict() == hist.to_dict()


def test_empty_histogram_round_trip_keeps_sentinels():
    back = StreamingHistogram.from_dict(StreamingHistogram().to_dict())
    assert back.count == 0
    assert back.quantile(0.5) == 0.0
    assert back.min == math.inf and back.max == -math.inf


def test_deserialized_sketch_quantile_never_returns_inf():
    # Regression: the quantile fallthrough returns ``self.max``, so a
    # payload whose buckets were stripped (count kept) used to answer
    # from the -inf sentinel when min/max were not restored.
    hist = StreamingHistogram()
    hist.observe(3.0)
    payload = hist.to_dict()
    payload["positive"] = {}
    back = StreamingHistogram.from_dict(payload)
    assert math.isfinite(back.quantile(0.99))
    assert back.quantile(0.99) == 3.0  # the restored max


def test_histogram_merge_equals_single_combined_sketch():
    rng = np.random.default_rng(3)
    samples = rng.lognormal(2.0, 1.0, size=2_000)
    a = StreamingHistogram(relative_accuracy=0.01)
    b = StreamingHistogram(relative_accuracy=0.01)
    combined = StreamingHistogram(relative_accuracy=0.01)
    for i, value in enumerate(samples):
        (a if i % 2 else b).observe(float(value))
        combined.observe(float(value))
    a.merge(b)
    merged, direct = a.to_dict(), combined.to_dict()
    # Totals differ only by float summation order.
    assert merged.pop("total") == pytest.approx(direct.pop("total"))
    assert merged == direct
    for q in (0.5, 0.95, 0.99):
        assert a.quantile(q) == combined.quantile(q)


def test_histogram_merge_empty_is_noop_mismatch_raises():
    a = StreamingHistogram(relative_accuracy=0.01)
    a.observe(1.0)
    a.merge(StreamingHistogram(relative_accuracy=0.005))  # empty: ok
    assert a.count == 1
    b = StreamingHistogram(relative_accuracy=0.005)
    b.observe(2.0)
    with pytest.raises(ValueError, match="different accuracies"):
        a.merge(b)


def test_registry_merge_semantics():
    a = MetricsRegistry()
    b = MetricsRegistry()
    a.inc("n", 2)
    b.inc("n", 3)
    b.inc("only_b")
    a.set_gauge("g", 1.0)
    b.set_gauge("g", 2.0)
    b.observe("h", 5.0)
    a.merge(b)
    assert a.counters["n"] == 5.0          # counters add
    assert a.counters["only_b"] == 1.0
    assert a.gauges["g"] == 2.0            # latest writer wins
    assert a.histograms["h"].count == 1    # adopted wholesale
    back = MetricsRegistry.from_dict(a.to_dict())
    assert back.to_dict() == a.to_dict()


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("jobs")
    registry.inc("jobs", 4)
    registry.set_gauge("gamma", 0.25)
    registry.set_gauge("gamma", 0.5)
    for value in range(100):
        registry.observe("latency", float(value))
    snap = registry.snapshot()
    assert snap["counters"]["jobs"] == 5.0
    assert snap["gauges"]["gamma"] == 0.5
    assert snap["histograms"]["latency"]["count"] == 100
    assert snap["histograms"]["latency"]["p50"] == pytest.approx(
        49.5, abs=2.0)
    # Same name returns the same histogram object.
    assert registry.histogram("latency") is registry.histogram("latency")
