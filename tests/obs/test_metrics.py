"""Streaming histogram accuracy and registry behaviour."""

import numpy as np
import pytest

from repro.obs import MetricsRegistry, StreamingHistogram


@pytest.mark.parametrize("dist", ["lognormal", "uniform", "normal"])
def test_quantiles_match_numpy(dist):
    rng = np.random.default_rng(42)
    if dist == "lognormal":
        samples = rng.lognormal(mean=10.0, sigma=1.5, size=20_000)
    elif dist == "uniform":
        samples = rng.uniform(1e-3, 1e3, size=20_000)
    else:
        samples = rng.normal(0.0, 50.0, size=20_000)  # signed values

    hist = StreamingHistogram(relative_accuracy=0.005)
    for value in samples:
        hist.observe(float(value))

    for q in (0.50, 0.95, 0.99):
        exact = float(np.quantile(samples, q))
        estimate = hist.quantile(q)
        # DDSketch guarantee: relative error <= accuracy (plus the
        # rank-interpolation difference vs numpy on finite samples).
        scale = max(abs(exact), 1e-9)
        assert abs(estimate - exact) / scale < 0.02, (q, exact, estimate)


def test_histogram_exact_stats():
    hist = StreamingHistogram()
    for value in (1.0, 2.0, 3.0, -4.0, 0.0):
        hist.observe(value)
    assert hist.count == 5
    assert hist.mean == pytest.approx(0.4)
    assert hist.min == -4.0 and hist.max == 3.0
    assert hist.quantile(0.0) == pytest.approx(-4.0, rel=0.02)
    assert hist.quantile(1.0) == pytest.approx(3.0, rel=0.02)


def test_histogram_empty_and_validation():
    hist = StreamingHistogram()
    assert hist.quantile(0.5) == 0.0
    assert hist.snapshot() == {"count": 0}
    with pytest.raises(ValueError):
        hist.quantile(1.5)
    with pytest.raises(ValueError):
        StreamingHistogram(relative_accuracy=0.0)


def test_histogram_memory_is_bounded():
    """The sketch stores buckets, not samples."""
    hist = StreamingHistogram(relative_accuracy=0.01)
    rng = np.random.default_rng(7)
    for value in rng.lognormal(5.0, 2.0, size=50_000):
        hist.observe(float(value))
    assert len(hist._positive) < 2_000  # vs 50k raw samples


def test_registry_counters_gauges_histograms():
    registry = MetricsRegistry()
    registry.inc("jobs")
    registry.inc("jobs", 4)
    registry.set_gauge("gamma", 0.25)
    registry.set_gauge("gamma", 0.5)
    for value in range(100):
        registry.observe("latency", float(value))
    snap = registry.snapshot()
    assert snap["counters"]["jobs"] == 5.0
    assert snap["gauges"]["gamma"] == 0.5
    assert snap["histograms"]["latency"]["count"] == 100
    assert snap["histograms"]["latency"]["p50"] == pytest.approx(
        49.5, abs=2.0)
    # Same name returns the same histogram object.
    assert registry.histogram("latency") is registry.histogram("latency")
