"""Span nesting, labels, aggregation, and the no-op fast path."""

import pytest

from repro.obs import NULL_SPAN, NullTracer, Tracer, get_observer, span


def test_span_nesting_and_labels():
    tracer = Tracer()
    with tracer.span("flow", design="aes"):
        with tracer.span("fit", design="aes"):
            pass
        with tracer.span("slice"):
            pass
    # Spans are recorded at exit: children first, parent last.
    names = [s.name for s in tracer.spans]
    assert names == ["fit", "slice", "flow"]
    fit, hw_slice, flow = tracer.spans
    assert flow.depth == 0 and flow.parent is None
    assert fit.depth == 1 and fit.parent == "flow"
    assert hw_slice.depth == 1 and hw_slice.parent == "flow"
    assert fit.labels == {"design": "aes"}
    assert flow.duration >= fit.duration >= 0.0


def test_span_records_on_exception():
    tracer = Tracer()
    with pytest.raises(RuntimeError):
        with tracer.span("boom"):
            raise RuntimeError("x")
    assert [s.name for s in tracer.spans] == ["boom"]
    assert tracer._stack == []  # stack unwound


def test_aggregate_groups_and_preorders():
    tracer = Tracer()
    for _ in range(3):
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
    rows = tracer.aggregate()
    assert [(r[0], r[2], r[3]) for r in rows] == [
        ("outer", 0, 3), ("inner", 1, 3)]
    outer_total = rows[0][4]
    inner_total = rows[1][4]
    assert outer_total >= inner_total


def test_null_tracer_is_pass_through():
    """Disabled tracing hands out one shared, stateless no-op."""
    tracer = NullTracer()
    cm1 = tracer.span("anything", design="aes")
    cm2 = tracer.span("else")
    assert cm1 is cm2 is NULL_SPAN  # no per-call allocation
    with cm1 as value:
        assert value is None
    assert tracer.spans == ()
    assert tracer.aggregate() == []
    # Exceptions propagate (no swallowing in __exit__).
    with pytest.raises(ValueError):
        with tracer.span("x"):
            raise ValueError("escapes")


def test_module_level_span_is_noop_without_observer():
    assert get_observer() is None
    assert span("anything", label=1) is NULL_SPAN
