"""SLO spec parsing and error-budget burn-rate tracking."""

import pytest

from repro.obs import SloSpec, SloTracker, TimeSeriesRegistry, parse_slo
from repro.obs.slo import describe_slo_rows


def _series(values, window_s=1.0, name="serve.miss"):
    """One sample per window, centred, in window order."""
    ts = TimeSeriesRegistry(window_s=window_s)
    for i, value in enumerate(values):
        ts.observe(name, (i + 0.5) * window_s, float(value))
    return ts


def test_parse_named_percent():
    spec = parse_slo("miss_rate<5%")
    assert spec.series == "serve.miss"
    assert spec.agg == "mean"
    assert spec.threshold == pytest.approx(0.05)
    assert spec.objective == pytest.approx(0.99)
    assert spec.describe() == "miss_rate<0.05@99%"


def test_parse_objective_and_le():
    spec = parse_slo("p99_decision_ms<=1.5@95%")
    assert spec.op == "<=" and spec.objective == pytest.approx(0.95)
    assert spec.series == "serve.decision_ms" and spec.agg == "p99"
    assert spec.complies(1.5) and not spec.complies(1.6)


def test_parse_generic_agg_series_form():
    spec = parse_slo("max:custom.series<2e-3")
    assert spec.series == "custom.series" and spec.agg == "max"
    assert spec.threshold == pytest.approx(2e-3)


def test_parse_errors_list_valid_signals():
    with pytest.raises(ValueError, match="cannot parse"):
        parse_slo("not a spec")
    with pytest.raises(ValueError, match="unknown SLO signal"):
        parse_slo("warp_speed<1")
    with pytest.raises(ValueError, match="unknown aggregate"):
        parse_slo("median:x<1")
    with pytest.raises(ValueError, match="objective"):
        SloSpec(name="x", series="x", agg="mean", op="<",
                threshold=1.0, objective=0.0)


def test_window_value_aggregates():
    ts = _series([0.0])
    cell = ts.cell("serve.miss", 0)
    cell.add(4.0, 0.01)
    assert SloSpec("x", "s", "mean", "<", 1).window_value(cell, 1.0) \
        == pytest.approx(2.0)
    assert SloSpec("x", "s", "rate", "<", 1).window_value(cell, 1.0) \
        == pytest.approx(2.0)   # 2 samples / 1 s window
    assert SloSpec("x", "s", "max", "<", 1).window_value(cell, 1.0) \
        == pytest.approx(4.0)
    assert SloSpec("x", "s", "min", "<", 1).window_value(cell, 1.0) \
        == pytest.approx(0.0)


def test_tracker_burn_rate_and_exhaustion():
    ts = _series([0.0, 1.0, 0.0, 1.0])
    tracker = SloTracker([parse_slo("miss_rate<0.5@90%")])
    tracker.finalize(ts)
    row = tracker.summary()[0]
    assert row["windows"] == 4
    assert row["bad_windows"] == 2
    assert row["burn_rate"] == pytest.approx(5.0)  # 0.5 / 0.1
    assert row["bad_window_indices"] == [1, 3]
    assert tracker.exhausted
    assert "EXHAUSTED" in tracker.describe()


def test_live_evaluation_never_judges_the_open_window():
    ts = TimeSeriesRegistry(window_s=1.0)
    tracker = SloTracker([parse_slo("miss_rate<0.5")])
    ts.observe("serve.miss", 0.5, 1.0)  # bad window 0, still open
    tracker.evaluate(ts, upto_t=0.9)
    assert tracker.summary()[0]["windows"] == 0
    tracker.evaluate(ts, upto_t=1.2)    # window 0 has closed now
    assert tracker.summary()[0]["windows"] == 1
    assert tracker.summary()[0]["bad_windows"] == 1
    # Idempotent: re-evaluating and finalizing never double-counts.
    tracker.evaluate(ts, upto_t=5.0)
    tracker.finalize(ts)
    assert tracker.summary()[0]["windows"] == 1


def test_idle_windows_are_skipped():
    ts = TimeSeriesRegistry(window_s=1.0)
    ts.observe("serve.miss", 0.5, 0.0)
    ts.observe("serve.miss", 5.5, 0.0)  # windows 1..4 saw nothing
    tracker = SloTracker([parse_slo("miss_rate<0.5")])
    tracker.finalize(ts)
    row = tracker.summary()[0]
    assert row["windows"] == 2 and row["bad_windows"] == 0
    assert not tracker.exhausted


def test_perfect_objective_burns_infinitely_on_any_bad_window():
    tracker = SloTracker([parse_slo("miss_rate<0.5@100%")])
    tracker.finalize(_series([1.0]))
    row = tracker.summary()[0]
    assert row["burn_rate"] is None  # inf is not JSON
    assert row["exhausted"]
    assert "inf" in describe_slo_rows([row])


def test_tracker_requires_specs():
    with pytest.raises(ValueError):
        SloTracker([])
